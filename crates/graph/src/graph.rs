//! Directed data graphs `G = (V, E, f_A)`.

use crate::attr::Attributes;
use crate::fail;
use crate::hash::FastHashMap;
use crate::node::NodeId;
use crate::shard::{ShardPlan, PARALLEL_WORK_THRESHOLD};
use crate::update::Update;

/// Per-node edge-position map: for the out side, `out_pos[from]` maps a
/// target id to the target's position inside `out[from]`; for the in side,
/// `inc_pos[to]` maps a source id to its position inside `inc[to]`.
type PosMap = FastHashMap<u32, u32>;

/// Adjacency lists at or below this length are probed by a linear scan
/// instead of a position map: scanning ≤ 64 `u32`s touches a handful of
/// cache lines, which beats two hash probes into cold per-node maps, and the
/// bulk of the nodes in the paper's workloads (average degree ≈ 6) stay far
/// below it.
/// A node's side builds its map lazily when its list first grows past the
/// threshold and keeps it until the list empties (hysteresis), so hubs — the
/// nodes the O(1)-removal machinery exists for — pay the map, and everyone
/// else pays a bounded scan. The structure is a pure function of the side's
/// insert/remove sequence, so it is identical for every shard count.
pub const POS_INDEX_THRESHOLD: usize = 64;

/// A directed data graph whose nodes carry attribute tuples.
///
/// The graph stores forward and reverse adjacency lists so that both the
/// children `Cr(v)` and parents `Pr(v)` of a node (Section 2.1) are available
/// in O(out-degree) / O(in-degree), as required by the incremental algorithms
/// of Sections 5 and 6. Edge positions are tracked **per node**: once a
/// node's list outgrows [`POS_INDEX_THRESHOLD`], `out_pos[v]` records where
/// each out-neighbour sits inside `out[v]` and `inc_pos[v]` where each
/// in-neighbour sits inside `inc[v]` (below the threshold a bounded linear
/// scan is cheaper than any hash probe), so `has_edge` and `remove_edge` are
/// O(1) regardless of endpoint degree — the update machinery of the
/// incremental engines deletes edges incident to high-degree hubs constantly
/// (degree-biased workloads, Section 8.2), and an unbounded `position()`
/// scan per deletion would make every such deletion O(deg).
///
/// # Sharded mutation
///
/// The per-node split (instead of one global `(from, to)` map) is what makes
/// the whole mutation state *partitionable by node id*: every structure a
/// batched edge update touches — `out[from]` + `out_pos[from]` on the out
/// side, `inc[to]` + `inc_pos[to]` on the in side, including the position
/// patches after a swap-remove — belongs to exactly one node. A
/// [`ShardPlan`] node-range shard can therefore insert/remove its own
/// sources' (resp. targets') edges on a disjoint `&mut` slice with no
/// locking, which is how [`DataGraph::apply_reduced_batch_sharded`] applies
/// a reduced batch in two embarrassingly parallel passes.
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    attrs: Vec<Attributes>,
    out: Vec<Vec<NodeId>>,
    inc: Vec<Vec<NodeId>>,
    /// `out_pos[from]`: target id -> position of the target in `out[from]`.
    /// Kept exact across swap-removes. Empty (never allocated) while
    /// `out[from]` is short enough to scan — see [`POS_INDEX_THRESHOLD`]:
    /// a non-empty map tracks *every* entry of its list, an empty map means
    /// the list is probed linearly.
    out_pos: Vec<PosMap>,
    /// `inc_pos[to]`: source id -> position of the source in `inc[to]`.
    /// Same hybrid regime as `out_pos`.
    inc_pos: Vec<PosMap>,
    num_edges: usize,
}

impl DataGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes. (`edges` is
    /// accepted for API stability; the per-node position maps size themselves
    /// as edges arrive.)
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        let _ = edges;
        DataGraph {
            attrs: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
            out_pos: Vec::with_capacity(nodes),
            inc_pos: Vec::with_capacity(nodes),
            num_edges: 0,
        }
    }

    /// Adds a node carrying `attrs` and returns its identifier.
    pub fn add_node(&mut self, attrs: Attributes) -> NodeId {
        let id = NodeId::from_index(self.attrs.len());
        self.attrs.push(attrs);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.out_pos.push(PosMap::default());
        self.inc_pos.push(PosMap::default());
        id
    }

    /// Adds a node with a single `label` attribute.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(Attributes::labeled(label))
    }

    /// Inserts the edge `(from, to)`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed (parallel edges are not stored; the paper's graphs are simple).
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of the graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.attrs.len(), "edge source {from} out of bounds");
        assert!(to.index() < self.attrs.len(), "edge target {to} out of bounds");
        fail::fire(fail::GRAPH_ADD_EDGE);
        if !side_try_push(&mut self.out[from.index()], &mut self.out_pos[from.index()], to) {
            return false;
        }
        side_push(&mut self.inc[to.index()], &mut self.inc_pos[to.index()], from);
        self.num_edges += 1;
        true
    }

    /// Removes the edge `(from, to)` in O(1), independent of endpoint degree.
    ///
    /// Returns `true` if the edge existed. The adjacency entries are
    /// swap-removed at their recorded positions; the entry swapped into the
    /// hole has its recorded position patched, so no linear scan ever runs.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if from.index() >= self.attrs.len() || to.index() >= self.attrs.len() {
            return false;
        }
        fail::fire(fail::GRAPH_REMOVE_EDGE);
        if !side_remove(&mut self.out[from.index()], &mut self.out_pos[from.index()], to) {
            return false;
        }
        let removed = side_remove(&mut self.inc[to.index()], &mut self.inc_pos[to.index()], from);
        debug_assert!(removed, "edge tracked on both sides");
        self.num_edges -= 1;
        true
    }

    /// Removes the edge `(from, to)` using linear `position()` scans over the
    /// adjacency lists — the behaviour this repository shipped before
    /// [`DataGraph::remove_edge`] became position-indexed.
    ///
    /// Kept **only** so the benchmark baseline (`igpm-bench::legacy`) can
    /// reproduce the seed implementation's true per-deletion cost, which is
    /// `O(deg)` on the degree-biased update workloads of Section 8.2. All
    /// invariants (including the position maps) are maintained; only the
    /// lookup is done the old way. Do not use outside benchmarks.
    pub fn remove_edge_linear(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.has_edge(from, to) {
            return false;
        }
        let out_pos = self.out[from.index()]
            .iter()
            .position(|&v| v == to)
            .expect("edge in index implies edge in adjacency") as u32;
        let inc_pos = self.inc[to.index()]
            .iter()
            .position(|&v| v == from)
            .expect("edge in index implies edge in reverse adjacency") as u32;
        if !self.out_pos[from.index()].is_empty() {
            debug_assert_eq!(self.out_pos[from.index()][&to.0], out_pos);
        }
        if !self.inc_pos[to.index()].is_empty() {
            debug_assert_eq!(self.inc_pos[to.index()][&from.0], inc_pos);
        }
        self.remove_edge(from, to)
    }

    /// Applies a **reduced** batch — each edge touched by at most one update,
    /// and every update effective (insertions of absent edges, deletions of
    /// present ones; exactly what `minDelta`'s net-effect reduction emits) —
    /// with the mutation sharded across the node ranges of `plan`.
    ///
    /// Two bulk-synchronous passes: pass 1 shards the updates by **source**
    /// node and mutates only `out[from]` + `out_pos[from]`; pass 2 shards by
    /// **target** node and mutates only `inc[to]` + `inc_pos[to]`. Both
    /// per-node structures (including swap-remove position patches) belong to
    /// the owning shard's contiguous range, handed out as disjoint
    /// `split_at_mut` slices — no locks, no atomics, no `unsafe`. Every
    /// per-node list receives exactly the updates that touch it, in batch
    /// order, so the final graph — adjacency order included — is
    /// **bit-identical for every shard count**, and one shard is the
    /// sequential loop. Threads are only spawned when the batch is large
    /// enough to amortise them.
    ///
    /// Returns the number of applied updates (always `updates.len()` for a
    /// correctly reduced batch).
    ///
    /// # Panics
    /// Panics (in debug builds) if `plan` does not cover this graph's nodes
    /// or an update is not effective; in release builds a malformed batch
    /// corrupts the edge index, so callers must reduce first.
    pub fn apply_reduced_batch_sharded(&mut self, updates: &[Update], plan: ShardPlan) -> usize {
        debug_assert_eq!(plan.nv, self.attrs.len(), "shard plan does not cover the graph");
        if updates.is_empty() {
            return 0;
        }
        let fan_out = plan.count > 1 && updates.len() >= PARALLEL_WORK_THRESHOLD;
        if !fan_out {
            // One shard (or too little work to pay for spawns): the two-pass
            // structure below degenerates to the plain sequential loop.
            for (i, update) in updates.iter().enumerate() {
                if i == updates.len() / 2 {
                    // Same site as the fan-out pass boundary below: halfway
                    // through the list is the sequential analogue of the
                    // "out sides done, in sides pending" partial state.
                    fail::fire(fail::GRAPH_APPLY_SIDES);
                }
                let (from, to) = update.endpoints();
                let changed = match update {
                    Update::InsertEdge { .. } => self.add_edge(from, to),
                    Update::DeleteEdge { .. } => self.remove_edge(from, to),
                };
                debug_assert!(changed, "reduced batch contained a no-op update {update}");
            }
            return updates.len();
        }
        let insertions = updates.iter().filter(|u| u.is_insert()).count();

        // Partition once per side; per-shard lists keep batch order, so every
        // adjacency list sees its updates in exactly the sequential order.
        let mut by_source: Vec<Vec<Update>> = vec![Vec::new(); plan.count];
        let mut by_target: Vec<Vec<Update>> = vec![Vec::new(); plan.count];
        for update in updates {
            let (from, to) = update.endpoints();
            by_source[plan.owner(from.index())].push(*update);
            by_target[plan.owner(to.index())].push(*update);
        }

        // Pass 1 — out side, sharded by source node.
        std::thread::scope(|scope| {
            let mut out_rest = self.out.as_mut_slice();
            let mut pos_rest = self.out_pos.as_mut_slice();
            for (shard, updates) in by_source.into_iter().enumerate() {
                let range = plan.range(shard);
                let (out_chunk, out_tail) = out_rest.split_at_mut(range.len());
                let (pos_chunk, pos_tail) = pos_rest.split_at_mut(range.len());
                out_rest = out_tail;
                pos_rest = pos_tail;
                if updates.is_empty() {
                    continue;
                }
                scope.spawn(move || apply_out_side(out_chunk, pos_chunk, range.start, &updates));
            }
        });
        // Between the passes the graph is deliberately inconsistent (forward
        // adjacency mutated, reverse adjacency pre-batch) — the failpoint
        // here lets the fault-injection suite prove the rollback repairs it.
        fail::fire(fail::GRAPH_APPLY_SIDES);
        // Pass 2 — in side, sharded by target node.
        std::thread::scope(|scope| {
            let mut inc_rest = self.inc.as_mut_slice();
            let mut pos_rest = self.inc_pos.as_mut_slice();
            for (shard, updates) in by_target.into_iter().enumerate() {
                let range = plan.range(shard);
                let (inc_chunk, inc_tail) = inc_rest.split_at_mut(range.len());
                let (pos_chunk, pos_tail) = pos_rest.split_at_mut(range.len());
                inc_rest = inc_tail;
                pos_rest = pos_tail;
                if updates.is_empty() {
                    continue;
                }
                scope.spawn(move || apply_in_side(inc_chunk, pos_chunk, range.start, &updates));
            }
        });
        // Every update was effective, so the edge-count delta is exact.
        self.num_edges = self.num_edges + insertions - (updates.len() - insertions);
        updates.len()
    }

    /// Returns `true` if the edge `(from, to)` is present.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        let Some(list) = self.out.get(from.index()) else { return false };
        side_contains(list, &self.out_pos[from.index()], to)
    }

    /// Returns `true` if `node` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.attrs.len()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// The attribute tuple `f_A(v)`.
    #[inline]
    pub fn attrs(&self, node: NodeId) -> &Attributes {
        &self.attrs[node.index()]
    }

    /// Mutable access to a node's attribute tuple.
    #[inline]
    pub fn attrs_mut(&mut self, node: NodeId) -> &mut Attributes {
        &mut self.attrs[node.index()]
    }

    /// The children `Cr(v)` of a node (targets of outgoing edges).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.out[node.index()]
    }

    /// The parents `Pr(v)` of a node (sources of incoming edges).
    #[inline]
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        &self.inc[node.index()]
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// Total degree (in + out) of a node.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Iterates over all node identifiers in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.attrs.len()).map(NodeId::from_index)
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(from, targets)| {
            let from = NodeId::from_index(from);
            targets.iter().map(move |&to| (from, to))
        })
    }

    /// Rebuilds the internal edge index from the adjacency lists. Only needed
    /// if the adjacency lists are populated by means other than
    /// [`DataGraph::add_edge`] (no such path exists today; kept for snapshot
    /// tooling and defensive repair).
    pub fn rebuild_edge_index(&mut self) {
        for (from, targets) in self.out.iter().enumerate() {
            let map = &mut self.out_pos[from];
            map.clear();
            if targets.len() > POS_INDEX_THRESHOLD {
                build_side_index(targets, map);
            }
        }
        for (to, sources) in self.inc.iter().enumerate() {
            let map = &mut self.inc_pos[to];
            map.clear();
            if sources.len() > POS_INDEX_THRESHOLD {
                build_side_index(sources, map);
            }
        }
    }

    /// Returns the nodes whose attributes satisfy `filter`, in index order.
    pub fn nodes_where<'a, F>(&'a self, mut filter: F) -> Vec<NodeId>
    where
        F: FnMut(&Attributes) -> bool + 'a,
    {
        self.nodes().filter(|&v| filter(self.attrs(v))).collect()
    }
}

/// True if `key` is an entry of one adjacency side: one probe when the side
/// is map-indexed, a bounded scan otherwise.
#[inline]
fn side_contains(list: &[NodeId], pos_map: &PosMap, key: NodeId) -> bool {
    if pos_map.is_empty() {
        list.contains(&key)
    } else {
        pos_map.contains_key(&key.0)
    }
}

/// Appends `key` to one adjacency side unless already present, in one map
/// probe (entry API) when the side is indexed. Returns whether it was
/// appended.
#[inline]
fn side_try_push(list: &mut Vec<NodeId>, pos_map: &mut PosMap, key: NodeId) -> bool {
    if pos_map.is_empty() {
        if list.contains(&key) {
            return false;
        }
        list.push(key);
        if list.len() > POS_INDEX_THRESHOLD {
            build_side_index(list, pos_map);
        }
        return true;
    }
    match pos_map.entry(key.0) {
        std::collections::hash_map::Entry::Occupied(_) => false,
        std::collections::hash_map::Entry::Vacant(slot) => {
            slot.insert(list.len() as u32);
            list.push(key);
            true
        }
    }
}

/// Appends `key` (known to be absent) to one adjacency side, building the
/// position map when the list first outgrows [`POS_INDEX_THRESHOLD`].
#[inline]
fn side_push(list: &mut Vec<NodeId>, pos_map: &mut PosMap, key: NodeId) {
    if !pos_map.is_empty() {
        pos_map.insert(key.0, list.len() as u32);
    }
    list.push(key);
    if pos_map.is_empty() && list.len() > POS_INDEX_THRESHOLD {
        build_side_index(list, pos_map);
    }
}

/// Removes `key` from one adjacency side if present: swap-remove at the
/// indexed (or scanned) position, patching the moved entry's map record when
/// the side is indexed. Returns whether the entry existed.
#[inline]
fn side_remove(list: &mut Vec<NodeId>, pos_map: &mut PosMap, key: NodeId) -> bool {
    if pos_map.is_empty() {
        let Some(pos) = list.iter().position(|&v| v == key) else {
            return false;
        };
        list.swap_remove(pos);
        return true;
    }
    let Some(pos) = pos_map.remove(&key.0) else {
        return false;
    };
    list.swap_remove(pos as usize);
    if let Some(&moved) = list.get(pos as usize) {
        *pos_map.get_mut(&moved.0).expect("moved entry tracked") = pos;
    }
    true
}

/// Indexes every entry of `list` into `pos_map` (the scan→map transition).
fn build_side_index(list: &[NodeId], pos_map: &mut PosMap) {
    pos_map.reserve(list.len());
    for (pos, &v) in list.iter().enumerate() {
        pos_map.insert(v.0, pos as u32);
    }
}

/// Pass 1 of the sharded mutation on one shard: applies the out-side of
/// `updates` (all of whose sources lie in the owned range starting at
/// `base`) to the owned `out` / `out_pos` slices.
fn apply_out_side(
    out: &mut [Vec<NodeId>],
    out_pos: &mut [PosMap],
    base: usize,
    updates: &[Update],
) {
    for update in updates {
        let (from, to) = update.endpoints();
        let local = from.index() - base;
        match update {
            Update::InsertEdge { .. } => {
                debug_assert!(
                    !side_contains(&out[local], &out_pos[local], to),
                    "reduced batch re-inserted present edge {update}"
                );
                side_push(&mut out[local], &mut out_pos[local], to);
            }
            Update::DeleteEdge { .. } => {
                let removed = side_remove(&mut out[local], &mut out_pos[local], to);
                debug_assert!(removed, "reduced batch deleted absent edge {update}");
            }
        }
    }
}

/// Pass 2 of the sharded mutation on one shard: applies the in-side of
/// `updates` (all of whose targets lie in the owned range starting at
/// `base`) to the owned `inc` / `inc_pos` slices.
fn apply_in_side(inc: &mut [Vec<NodeId>], inc_pos: &mut [PosMap], base: usize, updates: &[Update]) {
    for update in updates {
        let (from, to) = update.endpoints();
        let local = to.index() - base;
        match update {
            Update::InsertEdge { .. } => {
                debug_assert!(
                    !side_contains(&inc[local], &inc_pos[local], from),
                    "reduced batch re-inserted present edge {update}"
                );
                side_push(&mut inc[local], &mut inc_pos[local], from);
            }
            Update::DeleteEdge { .. } => {
                let removed = side_remove(&mut inc[local], &mut inc_pos[local], from);
                debug_assert!(removed, "reduced batch deleted absent edge {update}");
            }
        }
    }
}

impl PartialEq for DataGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.attrs != other.attrs || self.num_edges != other.num_edges {
            return false;
        }
        // Adjacency lists may be in different orders after removals; compare as sets.
        self.edges_as_sorted() == other.edges_as_sorted()
    }
}

impl DataGraph {
    fn edges_as_sorted(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        edges
    }

    /// Byte-for-byte adjacency comparison: `true` iff both graphs have the
    /// same attrs **and** identical adjacency lists in identical order.
    /// Stronger than `==` (which treats adjacency as a set); the sharded
    /// mutation path guarantees this level of identity across shard counts,
    /// and the equivalence suites assert it.
    pub fn identical_to(&self, other: &Self) -> bool {
        self.attrs == other.attrs
            && self.num_edges == other.num_edges
            && self.out == other.out
            && self.inc == other.inc
    }

    /// Restores the incoming-adjacency list of `node` to `order`, which must
    /// be a permutation of the current list; returns `false` (graph
    /// untouched) otherwise. Crate-internal for [`crate::io`]: a binary
    /// snapshot stores edges in out-adjacency order, which replays `out[v]`
    /// exactly but leaves each `inc[v]` in derived order — this reinstates
    /// the recorded in-order, making a snapshot round-trip byte-identical
    /// ([`DataGraph::identical_to`]), the level of identity the durable
    /// checkpoints ([`crate::wal`]) rely on.
    pub(crate) fn set_incoming_order(&mut self, node: NodeId, order: Vec<NodeId>) -> bool {
        let Some(current) = self.inc.get_mut(node.index()) else {
            return false;
        };
        if order.len() != current.len() {
            return false;
        }
        let mut sorted_current: Vec<u32> = current.iter().map(|v| v.0).collect();
        let mut sorted_order: Vec<u32> = order.iter().map(|v| v.0).collect();
        sorted_current.sort_unstable();
        sorted_order.sort_unstable();
        if sorted_current != sorted_order {
            return false;
        }
        *current = order;
        let pos_map = &mut self.inc_pos[node.index()];
        if !pos_map.is_empty() {
            pos_map.clear();
            build_side_index(&self.inc[node.index()], pos_map);
        }
        true
    }

    /// Undoes a (possibly partially applied) reduced batch, restoring the
    /// pre-batch **edge set**: for every update of `applied`, the inserted
    /// edge is removed if present and the deleted edge re-added if absent —
    /// on *each adjacency side independently*, so the repair also heals the
    /// half-applied states a panic can leave behind (one side of an edge
    /// mutated, the other not — e.g. a panic between the two passes of
    /// [`DataGraph::apply_reduced_batch_sharded`], or mid-way through the
    /// sequential loop). The edge count is recomputed from the adjacency
    /// lists afterwards, because a mid-mutation panic also skips the batched
    /// count maintenance.
    ///
    /// `applied` must be a *reduced* list (distinct edges, as emitted by the
    /// `minDelta` reduction), which is exactly what the engines stash before
    /// mutating; distinctness makes the repair order-independent. Updates
    /// with out-of-range endpoints are skipped. After the repair the graph
    /// `==` its pre-batch self (attributes, edge set, edge count) and the
    /// edge index is consistent; adjacency *order* may differ from the
    /// pre-batch order, which no matching result depends on.
    ///
    /// This is the rollback half of the engines' crash-consistency contract
    /// (see `RECOVERY.md`); it is an error path and favours robustness over
    /// speed.
    pub fn rollback_updates(&mut self, applied: &[Update]) {
        let nv = self.attrs.len();
        for update in applied {
            let (from, to) = update.endpoints();
            if from.index() >= nv || to.index() >= nv {
                continue;
            }
            match update {
                Update::InsertEdge { .. } => {
                    // Undo the insertion wherever it landed.
                    side_remove(&mut self.out[from.index()], &mut self.out_pos[from.index()], to);
                    side_remove(&mut self.inc[to.index()], &mut self.inc_pos[to.index()], from);
                }
                Update::DeleteEdge { .. } => {
                    // Re-add the deleted edge on whichever sides lost it.
                    if !side_contains(&self.out[from.index()], &self.out_pos[from.index()], to) {
                        side_push(&mut self.out[from.index()], &mut self.out_pos[from.index()], to);
                    }
                    if !side_contains(&self.inc[to.index()], &self.inc_pos[to.index()], from) {
                        side_push(&mut self.inc[to.index()], &mut self.inc_pos[to.index()], from);
                    }
                }
            }
        }
        self.num_edges = self.out.iter().map(Vec::len).sum();
    }

    /// Validates the internal edge-index invariants, panicking with a
    /// description on the first violation: an indexed side's map must record
    /// every entry at its exact position, an unindexed side must be empty of
    /// map entries and short enough to scan, and the edge count must agree
    /// with both adjacency sides. Used by the equivalence suites after
    /// sharded mutation.
    pub fn assert_edge_index_consistent(&self) {
        let assert_side = |list: &[NodeId], map: &PosMap, side: &str, node: usize| {
            if map.is_empty() {
                assert!(
                    list.len() <= POS_INDEX_THRESHOLD,
                    "{side} list of n{node} outgrew the scan threshold without an index"
                );
                return;
            }
            assert_eq!(map.len(), list.len(), "{side} map of n{node} missing entries");
            for (i, v) in list.iter().enumerate() {
                assert_eq!(
                    map.get(&v.0).copied(),
                    Some(i as u32),
                    "stale {side} position for ({node}, {v})"
                );
            }
        };
        let mut counted_out = 0usize;
        let mut counted_in = 0usize;
        for v in self.nodes() {
            assert_side(&self.out[v.index()], &self.out_pos[v.index()], "out", v.index());
            assert_side(&self.inc[v.index()], &self.inc_pos[v.index()], "in", v.index());
            counted_out += self.out[v.index()].len();
            counted_in += self.inc[v.index()].len();
            // Every out entry must be mirrored by an in entry.
            for &w in self.children(v) {
                assert!(
                    self.inc[w.index()].contains(&v),
                    "edge ({v}, {w}) missing from reverse adjacency"
                );
            }
        }
        assert_eq!(counted_out, self.edge_count());
        assert_eq!(counted_in, self.edge_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| g.add_labeled_node(format!("v{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    /// Checks that the edge index agrees with the adjacency lists exactly.
    fn assert_positions_consistent(g: &DataGraph) {
        g.assert_edge_index_consistent();
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edges are ignored");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.children(a), &[b]);
        assert_eq!(g.parents(b), &[a]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(a), 1);
        assert_positions_consistent(&g);
    }

    #[test]
    fn remove_edges() {
        let mut g = path_graph(3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(g.remove_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(a, b));
        assert!(g.has_edge(b, c));
        assert!(g.children(a).is_empty());
        assert!(g.parents(b).is_empty());
        assert_positions_consistent(&g);
    }

    #[test]
    fn high_degree_hub_removals_keep_positions_exact() {
        // Regression test for the O(1) removal fast path: a hub with 1000
        // out-edges and 1000 in-edges, edges removed in an order that forces
        // many swap-remove position patches.
        let n = 1001;
        let mut g = DataGraph::new();
        let hub = g.add_labeled_node("hub");
        let spokes: Vec<NodeId> = (1..n).map(|i| g.add_labeled_node(format!("s{i}"))).collect();
        for &s in &spokes {
            g.add_edge(hub, s);
            g.add_edge(s, hub);
        }
        assert_eq!(g.out_degree(hub), spokes.len());
        assert_eq!(g.in_degree(hub), spokes.len());
        assert_positions_consistent(&g);

        // Remove every third spoke (middle-of-list removals), then the rest.
        for (i, &s) in spokes.iter().enumerate() {
            if i % 3 == 0 {
                assert!(g.remove_edge(hub, s));
                assert!(g.remove_edge(s, hub));
            }
        }
        assert_positions_consistent(&g);
        for (i, &s) in spokes.iter().enumerate() {
            if i % 3 != 0 {
                assert!(g.remove_edge(hub, s));
                assert!(!g.has_edge(hub, s));
            }
        }
        assert_positions_consistent(&g);
        assert_eq!(g.out_degree(hub), 0);
        assert_eq!(g.in_degree(hub), spokes.len() - spokes.len().div_ceil(3));
    }

    #[test]
    fn interleaved_add_remove_matches_reference_set() {
        // Deterministic interleaving checked against a plain set-of-edges
        // reference model.
        let n = 37;
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_labeled_node(format!("v{i}"));
        }
        let mut reference = std::collections::HashSet::new();
        let mut x = 7usize;
        for step in 0..4000 {
            x = (x * 31 + 17) % (n * n);
            let (a, b) = ((x / n) as u32, (x % n) as u32);
            if a == b {
                continue;
            }
            let (a, b) = (NodeId(a), NodeId(b));
            if step % 3 == 0 {
                assert_eq!(g.remove_edge(a, b), reference.remove(&(a, b)));
            } else {
                assert_eq!(g.add_edge(a, b), reference.insert((a, b)));
            }
        }
        assert_eq!(g.edge_count(), reference.len());
        for &(a, b) in &reference {
            assert!(g.has_edge(a, b));
        }
        assert_positions_consistent(&g);
    }

    #[test]
    fn node_and_edge_iterators() {
        let g = path_graph(4);
        assert_eq!(g.nodes().count(), 4);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn attributes_access_and_filtering() {
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
        let bob = g.add_node(Attributes::new().with("name", "Bob").with("job", "DB"));
        g.attrs_mut(bob).set("job", "Bio");
        assert_eq!(g.attrs(ann).get("job").unwrap(), &crate::AttrValue::from("CTO"));
        let bios = g.nodes_where(|a| a.get("job") == Some(&crate::AttrValue::from("Bio")));
        assert_eq!(bios, vec![bob]);
    }

    #[test]
    fn graph_equality_ignores_adjacency_order() {
        let mut g1 = DataGraph::new();
        let a = g1.add_labeled_node("a");
        let b = g1.add_labeled_node("b");
        let c = g1.add_labeled_node("c");
        g1.add_edge(a, b);
        g1.add_edge(a, c);

        let mut g2 = DataGraph::new();
        let a2 = g2.add_labeled_node("a");
        let b2 = g2.add_labeled_node("b");
        let c2 = g2.add_labeled_node("c");
        g2.add_edge(a2, c2);
        g2.add_edge(a2, b2);

        assert_eq!(g1, g2);
        assert!(!g1.identical_to(&g2), "identical_to is adjacency-order-sensitive");
        g2.remove_edge(a2, b2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rebuild_edge_index_restores_positions() {
        let mut g = path_graph(5);
        g.remove_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(4));
        g.rebuild_edge_index();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(4)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_positions_consistent(&g);
        // Removal keeps working on the rebuilt index.
        assert!(g.remove_edge(NodeId(0), NodeId(4)));
        assert_positions_consistent(&g);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn adding_edge_with_unknown_endpoint_panics() {
        let mut g = path_graph(2);
        g.add_edge(NodeId(0), NodeId(7));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = DataGraph::with_capacity(10, 20);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn sharded_reduced_batch_matches_sequential_application() {
        // A reduced mixed batch (distinct edges, all effective) applied
        // through the sharded two-pass path must leave the graph — adjacency
        // order included — exactly as the sequential loop does, for every
        // shard count, including counts that fan out threads.
        let n = 64usize;
        let mut base = DataGraph::new();
        for i in 0..n {
            base.add_labeled_node(format!("v{i}"));
        }
        // Seed edges: a deterministic spread, then build a reduced batch that
        // deletes half of them and inserts fresh ones.
        let mut seeded = Vec::new();
        let mut x = 5usize;
        while seeded.len() < 300 {
            x = (x * 29 + 13) % (n * n);
            let (a, b) = (NodeId((x / n) as u32), NodeId((x % n) as u32));
            if a != b && base.add_edge(a, b) {
                seeded.push((a, b));
            }
        }
        let mut updates: Vec<Update> = Vec::new();
        for (i, &(a, b)) in seeded.iter().enumerate() {
            if i % 2 == 0 {
                updates.push(Update::delete(a, b));
            }
        }
        let mut y = 11usize;
        while updates.len() < 280 {
            y = (y * 31 + 7) % (n * n);
            let (a, b) = (NodeId((y / n) as u32), NodeId((y % n) as u32));
            if a != b && !base.has_edge(a, b) && !updates.iter().any(|u| u.endpoints() == (a, b)) {
                updates.push(Update::insert(a, b));
            }
        }

        let mut reference = base.clone();
        for u in &updates {
            assert!(u.apply(&mut reference), "constructed batch must be effective");
        }
        for shards in [1usize, 2, 3, 8] {
            let mut g = base.clone();
            let applied =
                g.apply_reduced_batch_sharded(&updates, ShardPlan::new(g.node_count(), shards));
            assert_eq!(applied, updates.len());
            assert!(g.identical_to(&reference), "sharded application diverged at shards={shards}");
            g.assert_edge_index_consistent();
        }
    }

    #[test]
    fn rollback_restores_the_pre_batch_edge_set_from_any_partial_state() {
        let n = 40usize;
        let mut base = DataGraph::new();
        for i in 0..n {
            base.add_labeled_node(format!("v{i}"));
        }
        let mut x = 3usize;
        let mut seeded = Vec::new();
        while seeded.len() < 120 {
            x = (x * 29 + 13) % (n * n);
            let (a, b) = (NodeId((x / n) as u32), NodeId((x % n) as u32));
            if a != b && base.add_edge(a, b) {
                seeded.push((a, b));
            }
        }
        // A reduced batch: delete a third of the seeded edges, insert fresh ones.
        let mut updates: Vec<Update> = seeded
            .iter()
            .enumerate()
            .filter(|(i, _)| i % 3 == 0)
            .map(|(_, &(a, b))| Update::delete(a, b))
            .collect();
        let mut y = 17usize;
        while updates.len() < 80 {
            y = (y * 31 + 7) % (n * n);
            let (a, b) = (NodeId((y / n) as u32), NodeId((y % n) as u32));
            if a != b && !base.has_edge(a, b) && !updates.iter().any(|u| u.endpoints() == (a, b)) {
                updates.push(Update::insert(a, b));
            }
        }
        // Every partial prefix — from "nothing applied" to "everything
        // applied" — must roll back to the pre-batch edge set.
        for applied_prefix in [0usize, 1, 13, 40, updates.len()] {
            let mut g = base.clone();
            for u in &updates[..applied_prefix] {
                assert!(u.apply(&mut g));
            }
            g.rollback_updates(&updates);
            assert_eq!(g, base, "prefix {applied_prefix} did not roll back");
            g.assert_edge_index_consistent();
        }
        // Cross-side partial state: out sides fully applied, in sides not —
        // what a panic between the two sharded passes leaves behind.
        let mut g = base.clone();
        let mut out_pos_owned = std::mem::take(&mut g.out_pos);
        let mut out_owned = std::mem::take(&mut g.out);
        apply_out_side(&mut out_owned, &mut out_pos_owned, 0, &updates);
        g.out = out_owned;
        g.out_pos = out_pos_owned;
        g.rollback_updates(&updates);
        assert_eq!(g, base, "cross-side partial state did not roll back");
        g.assert_edge_index_consistent();
    }

    #[test]
    fn sharded_reduced_batch_crosses_the_thread_threshold() {
        // Enough updates to actually spawn the scoped threads (>= the
        // PARALLEL_WORK_THRESHOLD gate), still bit-identical to sequential.
        let n = 400usize;
        let mut base = DataGraph::new();
        for i in 0..n {
            base.add_labeled_node(format!("v{i}"));
        }
        let mut updates: Vec<Update> = Vec::new();
        let mut x = 3usize;
        let mut chosen = std::collections::HashSet::new();
        while updates.len() < 6000 {
            x = (x * 37 + 11) % (n * n);
            let (a, b) = (NodeId((x / n) as u32), NodeId((x % n) as u32));
            if a != b && chosen.insert((a.0, b.0)) {
                updates.push(Update::insert(a, b));
            }
        }
        let mut reference = base.clone();
        for u in &updates {
            assert!(u.apply(&mut reference));
        }
        let mut g = base.clone();
        g.apply_reduced_batch_sharded(&updates, ShardPlan::new(n, 4));
        assert!(g.identical_to(&reference));
        g.assert_edge_index_consistent();

        // And delete them all back, sharded.
        let deletions: Vec<Update> =
            updates.iter().map(|u| Update::delete(u.endpoints().0, u.endpoints().1)).collect();
        let mut reference = g.clone();
        for u in &deletions {
            assert!(u.apply(&mut reference));
        }
        g.apply_reduced_batch_sharded(&deletions, ShardPlan::new(n, 4));
        assert!(g.identical_to(&reference));
        assert_eq!(g.edge_count(), base.edge_count());
        g.assert_edge_index_consistent();
    }
}
