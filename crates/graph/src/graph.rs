//! Directed data graphs `G = (V, E, f_A)`.

use crate::attr::Attributes;
use crate::hash::{map_with_capacity, FastHashMap};
use crate::node::NodeId;

/// A directed data graph whose nodes carry attribute tuples.
///
/// The graph stores forward and reverse adjacency lists so that both the
/// children `Cr(v)` and parents `Pr(v)` of a node (Section 2.1) are available
/// in O(out-degree) / O(in-degree), as required by the incremental algorithms
/// of Sections 5 and 6. An edge map provides O(1) `has_edge` checks **and**
/// records each edge's position inside the two adjacency lists, so that
/// `remove_edge` is O(1) regardless of endpoint degree: the update machinery
/// of the incremental engines deletes edges incident to high-degree hubs
/// constantly (degree-biased workloads, Section 8.2), and a linear
/// `position()` scan per deletion would make every such deletion O(deg).
#[derive(Debug, Clone, Default)]
pub struct DataGraph {
    attrs: Vec<Attributes>,
    out: Vec<Vec<NodeId>>,
    inc: Vec<Vec<NodeId>>,
    /// `(from, to)` -> (position of `to` in `out[from]`, position of `from`
    /// in `inc[to]`). Kept exact across swap-removes.
    edge_pos: FastHashMap<(u32, u32), (u32, u32)>,
    num_edges: usize,
}

impl DataGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DataGraph {
            attrs: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
            edge_pos: map_with_capacity(edges),
            num_edges: 0,
        }
    }

    /// Adds a node carrying `attrs` and returns its identifier.
    pub fn add_node(&mut self, attrs: Attributes) -> NodeId {
        let id = NodeId::from_index(self.attrs.len());
        self.attrs.push(attrs);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a node with a single `label` attribute.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(Attributes::labeled(label))
    }

    /// Inserts the edge `(from, to)`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed (parallel edges are not stored; the paper's graphs are simple).
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of the graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.attrs.len(), "edge source {from} out of bounds");
        assert!(to.index() < self.attrs.len(), "edge target {to} out of bounds");
        let out_pos = self.out[from.index()].len() as u32;
        let inc_pos = self.inc[to.index()].len() as u32;
        match self.edge_pos.entry((from.0, to.0)) {
            std::collections::hash_map::Entry::Occupied(_) => return false,
            std::collections::hash_map::Entry::Vacant(slot) => {
                slot.insert((out_pos, inc_pos));
            }
        }
        self.out[from.index()].push(to);
        self.inc[to.index()].push(from);
        self.num_edges += 1;
        true
    }

    /// Removes the edge `(from, to)` in O(1), independent of endpoint degree.
    ///
    /// Returns `true` if the edge existed. The adjacency entries are
    /// swap-removed at their recorded positions; the entry swapped into the
    /// hole has its recorded position patched, so no linear scan ever runs.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        let Some((out_pos, inc_pos)) = self.edge_pos.remove(&(from.0, to.0)) else {
            return false;
        };
        let out = &mut self.out[from.index()];
        out.swap_remove(out_pos as usize);
        if let Some(&moved) = out.get(out_pos as usize) {
            self.edge_pos.get_mut(&(from.0, moved.0)).expect("moved out-edge tracked").0 = out_pos;
        }
        let inc = &mut self.inc[to.index()];
        inc.swap_remove(inc_pos as usize);
        if let Some(&moved) = inc.get(inc_pos as usize) {
            self.edge_pos.get_mut(&(moved.0, to.0)).expect("moved in-edge tracked").1 = inc_pos;
        }
        self.num_edges -= 1;
        true
    }

    /// Removes the edge `(from, to)` using linear `position()` scans over the
    /// adjacency lists — the behaviour this repository shipped before
    /// [`DataGraph::remove_edge`] became position-indexed.
    ///
    /// Kept **only** so the benchmark baseline (`igpm-bench::legacy`) can
    /// reproduce the seed implementation's true per-deletion cost, which is
    /// `O(deg)` on the degree-biased update workloads of Section 8.2. All
    /// invariants (including the position map) are maintained; only the
    /// lookup is done the old way. Do not use outside benchmarks.
    pub fn remove_edge_linear(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.edge_pos.contains_key(&(from.0, to.0)) {
            return false;
        }
        let out_pos = self.out[from.index()]
            .iter()
            .position(|&v| v == to)
            .expect("edge in map implies edge in adjacency") as u32;
        let inc_pos = self.inc[to.index()]
            .iter()
            .position(|&v| v == from)
            .expect("edge in map implies edge in reverse adjacency") as u32;
        debug_assert_eq!(self.edge_pos[&(from.0, to.0)], (out_pos, inc_pos));
        self.remove_edge(from, to)
    }

    /// Returns `true` if the edge `(from, to)` is present.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_pos.contains_key(&(from.0, to.0))
    }

    /// Returns `true` if `node` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.attrs.len()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// The attribute tuple `f_A(v)`.
    #[inline]
    pub fn attrs(&self, node: NodeId) -> &Attributes {
        &self.attrs[node.index()]
    }

    /// Mutable access to a node's attribute tuple.
    #[inline]
    pub fn attrs_mut(&mut self, node: NodeId) -> &mut Attributes {
        &mut self.attrs[node.index()]
    }

    /// The children `Cr(v)` of a node (targets of outgoing edges).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.out[node.index()]
    }

    /// The parents `Pr(v)` of a node (sources of incoming edges).
    #[inline]
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        &self.inc[node.index()]
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// Total degree (in + out) of a node.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Iterates over all node identifiers in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.attrs.len()).map(NodeId::from_index)
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(from, targets)| {
            let from = NodeId::from_index(from);
            targets.iter().map(move |&to| (from, to))
        })
    }

    /// Rebuilds the internal edge index from the adjacency lists. Only needed
    /// if the adjacency lists are populated by means other than
    /// [`DataGraph::add_edge`] (no such path exists today; kept for snapshot
    /// tooling and defensive repair).
    pub fn rebuild_edge_index(&mut self) {
        let mut map = map_with_capacity(self.num_edges);
        for (from, targets) in self.out.iter().enumerate() {
            for (pos, &to) in targets.iter().enumerate() {
                map.insert((from as u32, to.0), (pos as u32, 0u32));
            }
        }
        for (to, sources) in self.inc.iter().enumerate() {
            for (pos, &from) in sources.iter().enumerate() {
                map.get_mut(&(from.0, to as u32)).expect("inc edge also in out").1 = pos as u32;
            }
        }
        self.edge_pos = map;
    }

    /// Returns the nodes whose attributes satisfy `filter`, in index order.
    pub fn nodes_where<'a, F>(&'a self, mut filter: F) -> Vec<NodeId>
    where
        F: FnMut(&Attributes) -> bool + 'a,
    {
        self.nodes().filter(|&v| filter(self.attrs(v))).collect()
    }
}

impl PartialEq for DataGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.attrs != other.attrs || self.num_edges != other.num_edges {
            return false;
        }
        // Adjacency lists may be in different orders after removals; compare as sets.
        self.edges_as_sorted() == other.edges_as_sorted()
    }
}

impl DataGraph {
    fn edges_as_sorted(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        edges
    }

    /// Validates the internal edge-index invariants (test support).
    #[cfg(test)]
    pub(crate) fn assert_edge_index_consistent(&self) {
        let mut counted = 0usize;
        for v in self.nodes() {
            for (i, &w) in self.children(v).iter().enumerate() {
                let &(out_pos, inc_pos) =
                    self.edge_pos.get(&(v.0, w.0)).expect("edge missing from map");
                assert_eq!(out_pos as usize, i, "stale out position for ({v}, {w})");
                assert_eq!(self.inc[w.index()][inc_pos as usize], v, "stale in position");
                counted += 1;
            }
        }
        assert_eq!(counted, self.edge_count());
        assert_eq!(self.edge_pos.len(), self.edge_count());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| g.add_labeled_node(format!("v{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    /// Checks that the edge index agrees with the adjacency lists exactly.
    fn assert_positions_consistent(g: &DataGraph) {
        g.assert_edge_index_consistent();
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edges are ignored");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.children(a), &[b]);
        assert_eq!(g.parents(b), &[a]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(a), 1);
        assert_positions_consistent(&g);
    }

    #[test]
    fn remove_edges() {
        let mut g = path_graph(3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(g.remove_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(a, b));
        assert!(g.has_edge(b, c));
        assert!(g.children(a).is_empty());
        assert!(g.parents(b).is_empty());
        assert_positions_consistent(&g);
    }

    #[test]
    fn high_degree_hub_removals_keep_positions_exact() {
        // Regression test for the O(1) removal fast path: a hub with 1000
        // out-edges and 1000 in-edges, edges removed in an order that forces
        // many swap-remove position patches.
        let n = 1001;
        let mut g = DataGraph::new();
        let hub = g.add_labeled_node("hub");
        let spokes: Vec<NodeId> = (1..n).map(|i| g.add_labeled_node(format!("s{i}"))).collect();
        for &s in &spokes {
            g.add_edge(hub, s);
            g.add_edge(s, hub);
        }
        assert_eq!(g.out_degree(hub), spokes.len());
        assert_eq!(g.in_degree(hub), spokes.len());
        assert_positions_consistent(&g);

        // Remove every third spoke (middle-of-list removals), then the rest.
        for (i, &s) in spokes.iter().enumerate() {
            if i % 3 == 0 {
                assert!(g.remove_edge(hub, s));
                assert!(g.remove_edge(s, hub));
            }
        }
        assert_positions_consistent(&g);
        for (i, &s) in spokes.iter().enumerate() {
            if i % 3 != 0 {
                assert!(g.remove_edge(hub, s));
                assert!(!g.has_edge(hub, s));
            }
        }
        assert_positions_consistent(&g);
        assert_eq!(g.out_degree(hub), 0);
        assert_eq!(g.in_degree(hub), spokes.len() - spokes.len().div_ceil(3));
    }

    #[test]
    fn interleaved_add_remove_matches_reference_set() {
        // Deterministic interleaving checked against a plain set-of-edges
        // reference model.
        let n = 37;
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_labeled_node(format!("v{i}"));
        }
        let mut reference = std::collections::HashSet::new();
        let mut x = 7usize;
        for step in 0..4000 {
            x = (x * 31 + 17) % (n * n);
            let (a, b) = ((x / n) as u32, (x % n) as u32);
            if a == b {
                continue;
            }
            let (a, b) = (NodeId(a), NodeId(b));
            if step % 3 == 0 {
                assert_eq!(g.remove_edge(a, b), reference.remove(&(a, b)));
            } else {
                assert_eq!(g.add_edge(a, b), reference.insert((a, b)));
            }
        }
        assert_eq!(g.edge_count(), reference.len());
        for &(a, b) in &reference {
            assert!(g.has_edge(a, b));
        }
        assert_positions_consistent(&g);
    }

    #[test]
    fn node_and_edge_iterators() {
        let g = path_graph(4);
        assert_eq!(g.nodes().count(), 4);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn attributes_access_and_filtering() {
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
        let bob = g.add_node(Attributes::new().with("name", "Bob").with("job", "DB"));
        g.attrs_mut(bob).set("job", "Bio");
        assert_eq!(g.attrs(ann).get("job").unwrap(), &crate::AttrValue::from("CTO"));
        let bios = g.nodes_where(|a| a.get("job") == Some(&crate::AttrValue::from("Bio")));
        assert_eq!(bios, vec![bob]);
    }

    #[test]
    fn graph_equality_ignores_adjacency_order() {
        let mut g1 = DataGraph::new();
        let a = g1.add_labeled_node("a");
        let b = g1.add_labeled_node("b");
        let c = g1.add_labeled_node("c");
        g1.add_edge(a, b);
        g1.add_edge(a, c);

        let mut g2 = DataGraph::new();
        let a2 = g2.add_labeled_node("a");
        let b2 = g2.add_labeled_node("b");
        let c2 = g2.add_labeled_node("c");
        g2.add_edge(a2, c2);
        g2.add_edge(a2, b2);

        assert_eq!(g1, g2);
        g2.remove_edge(a2, b2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn rebuild_edge_index_restores_positions() {
        let mut g = path_graph(5);
        g.remove_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(0), NodeId(4));
        g.rebuild_edge_index();
        assert!(g.has_edge(NodeId(0), NodeId(1)));
        assert!(g.has_edge(NodeId(0), NodeId(4)));
        assert!(!g.has_edge(NodeId(1), NodeId(2)));
        assert_positions_consistent(&g);
        // Removal keeps working on the rebuilt index.
        assert!(g.remove_edge(NodeId(0), NodeId(4)));
        assert_positions_consistent(&g);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn adding_edge_with_unknown_endpoint_panics() {
        let mut g = path_graph(2);
        g.add_edge(NodeId(0), NodeId(7));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = DataGraph::with_capacity(10, 20);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
