//! Directed data graphs `G = (V, E, f_A)`.

use crate::attr::Attributes;
use crate::hash::{set_with_capacity, FastHashSet};
use crate::node::NodeId;
use serde::{Deserialize, Serialize};

/// A directed data graph whose nodes carry attribute tuples.
///
/// The graph stores forward and reverse adjacency lists so that both the
/// children `Cr(v)` and parents `Pr(v)` of a node (Section 2.1) are available
/// in O(out-degree) / O(in-degree), as required by the incremental algorithms
/// of Sections 5 and 6. An edge set provides O(1) `has_edge` checks, which the
/// update machinery uses to ignore redundant insertions/deletions.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DataGraph {
    attrs: Vec<Attributes>,
    out: Vec<Vec<NodeId>>,
    inc: Vec<Vec<NodeId>>,
    #[serde(skip, default)]
    edge_set: FastHashSet<(u32, u32)>,
    num_edges: usize,
}

impl DataGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        DataGraph::default()
    }

    /// Creates an empty graph with room for `nodes` nodes and `edges` edges.
    pub fn with_capacity(nodes: usize, edges: usize) -> Self {
        DataGraph {
            attrs: Vec::with_capacity(nodes),
            out: Vec::with_capacity(nodes),
            inc: Vec::with_capacity(nodes),
            edge_set: set_with_capacity(edges),
            num_edges: 0,
        }
    }

    /// Adds a node carrying `attrs` and returns its identifier.
    pub fn add_node(&mut self, attrs: Attributes) -> NodeId {
        let id = NodeId::from_index(self.attrs.len());
        self.attrs.push(attrs);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a node with a single `label` attribute.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> NodeId {
        self.add_node(Attributes::labeled(label))
    }

    /// Inserts the edge `(from, to)`.
    ///
    /// Returns `true` if the edge was newly inserted, `false` if it already
    /// existed (parallel edges are not stored; the paper's graphs are simple).
    ///
    /// # Panics
    /// Panics if either endpoint is not a node of the graph.
    pub fn add_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        assert!(from.index() < self.attrs.len(), "edge source {from} out of bounds");
        assert!(to.index() < self.attrs.len(), "edge target {to} out of bounds");
        if !self.edge_set.insert((from.0, to.0)) {
            return false;
        }
        self.out[from.index()].push(to);
        self.inc[to.index()].push(from);
        self.num_edges += 1;
        true
    }

    /// Removes the edge `(from, to)`.
    ///
    /// Returns `true` if the edge existed.
    pub fn remove_edge(&mut self, from: NodeId, to: NodeId) -> bool {
        if !self.edge_set.remove(&(from.0, to.0)) {
            return false;
        }
        let out = &mut self.out[from.index()];
        if let Some(pos) = out.iter().position(|&v| v == to) {
            out.swap_remove(pos);
        }
        let inc = &mut self.inc[to.index()];
        if let Some(pos) = inc.iter().position(|&v| v == from) {
            inc.swap_remove(pos);
        }
        self.num_edges -= 1;
        true
    }

    /// Returns `true` if the edge `(from, to)` is present.
    #[inline]
    pub fn has_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.edge_set.contains(&(from.0, to.0))
    }

    /// Returns `true` if `node` is a node of this graph.
    #[inline]
    pub fn contains_node(&self, node: NodeId) -> bool {
        node.index() < self.attrs.len()
    }

    /// Number of nodes `|V|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.attrs.len()
    }

    /// Number of edges `|E|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.num_edges
    }

    /// The attribute tuple `f_A(v)`.
    #[inline]
    pub fn attrs(&self, node: NodeId) -> &Attributes {
        &self.attrs[node.index()]
    }

    /// Mutable access to a node's attribute tuple.
    #[inline]
    pub fn attrs_mut(&mut self, node: NodeId) -> &mut Attributes {
        &mut self.attrs[node.index()]
    }

    /// The children `Cr(v)` of a node (targets of outgoing edges).
    #[inline]
    pub fn children(&self, node: NodeId) -> &[NodeId] {
        &self.out[node.index()]
    }

    /// The parents `Pr(v)` of a node (sources of incoming edges).
    #[inline]
    pub fn parents(&self, node: NodeId) -> &[NodeId] {
        &self.inc[node.index()]
    }

    /// Out-degree of a node.
    #[inline]
    pub fn out_degree(&self, node: NodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of a node.
    #[inline]
    pub fn in_degree(&self, node: NodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// Total degree (in + out) of a node.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.out_degree(node) + self.in_degree(node)
    }

    /// Iterates over all node identifiers in index order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.attrs.len()).map(NodeId::from_index)
    }

    /// Iterates over all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.out
            .iter()
            .enumerate()
            .flat_map(|(from, targets)| {
                let from = NodeId::from_index(from);
                targets.iter().map(move |&to| (from, to))
            })
    }

    /// Rebuilds the internal edge set; used after deserialization, where the
    /// set is skipped to keep snapshots compact.
    pub fn rebuild_edge_index(&mut self) {
        let mut set = set_with_capacity(self.num_edges);
        for (from, targets) in self.out.iter().enumerate() {
            for &to in targets {
                set.insert((from as u32, to.0));
            }
        }
        self.edge_set = set;
    }

    /// Returns the nodes whose attributes satisfy `filter`, in index order.
    pub fn nodes_where<'a, F>(&'a self, mut filter: F) -> Vec<NodeId>
    where
        F: FnMut(&Attributes) -> bool + 'a,
    {
        self.nodes().filter(|&v| filter(self.attrs(v))).collect()
    }
}

impl PartialEq for DataGraph {
    fn eq(&self, other: &Self) -> bool {
        if self.attrs != other.attrs || self.num_edges != other.num_edges {
            return false;
        }
        // Adjacency lists may be in different orders after removals; compare as sets.
        self.edges_as_sorted() == other.edges_as_sorted()
    }
}

impl DataGraph {
    fn edges_as_sorted(&self) -> Vec<(u32, u32)> {
        let mut edges: Vec<(u32, u32)> = self.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> DataGraph {
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| g.add_labeled_node(format!("v{i}"))).collect();
        for w in nodes.windows(2) {
            g.add_edge(w[0], w[1]);
        }
        g
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut g = DataGraph::new();
        let a = g.add_labeled_node("a");
        let b = g.add_labeled_node("b");
        assert_eq!(g.node_count(), 2);
        assert_eq!(g.edge_count(), 0);
        assert!(g.add_edge(a, b));
        assert!(!g.add_edge(a, b), "duplicate edges are ignored");
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(a, b));
        assert!(!g.has_edge(b, a));
        assert_eq!(g.children(a), &[b]);
        assert_eq!(g.parents(b), &[a]);
        assert_eq!(g.out_degree(a), 1);
        assert_eq!(g.in_degree(a), 0);
        assert_eq!(g.degree(a), 1);
    }

    #[test]
    fn remove_edges() {
        let mut g = path_graph(3);
        let (a, b, c) = (NodeId(0), NodeId(1), NodeId(2));
        assert!(g.remove_edge(a, b));
        assert!(!g.remove_edge(a, b));
        assert_eq!(g.edge_count(), 1);
        assert!(!g.has_edge(a, b));
        assert!(g.has_edge(b, c));
        assert!(g.children(a).is_empty());
        assert!(g.parents(b).is_empty());
    }

    #[test]
    fn node_and_edge_iterators() {
        let g = path_graph(4);
        assert_eq!(g.nodes().count(), 4);
        let mut edges: Vec<(u32, u32)> = g.edges().map(|(a, b)| (a.0, b.0)).collect();
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 3)]);
    }

    #[test]
    fn attributes_access_and_filtering() {
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
        let bob = g.add_node(Attributes::new().with("name", "Bob").with("job", "DB"));
        g.attrs_mut(bob).set("job", "Bio");
        assert_eq!(g.attrs(ann).get("job").unwrap(), &crate::AttrValue::from("CTO"));
        let bios = g.nodes_where(|a| a.get("job") == Some(&crate::AttrValue::from("Bio")));
        assert_eq!(bios, vec![bob]);
    }

    #[test]
    fn graph_equality_ignores_adjacency_order() {
        let mut g1 = DataGraph::new();
        let a = g1.add_labeled_node("a");
        let b = g1.add_labeled_node("b");
        let c = g1.add_labeled_node("c");
        g1.add_edge(a, b);
        g1.add_edge(a, c);

        let mut g2 = DataGraph::new();
        let a2 = g2.add_labeled_node("a");
        let b2 = g2.add_labeled_node("b");
        let c2 = g2.add_labeled_node("c");
        g2.add_edge(a2, c2);
        g2.add_edge(a2, b2);

        assert_eq!(g1, g2);
        g2.remove_edge(a2, b2);
        assert_ne!(g1, g2);
    }

    #[test]
    fn serde_round_trip_rebuilds_edge_index() {
        let g = path_graph(5);
        let json = serde_json::to_string(&g).unwrap();
        let mut back: DataGraph = serde_json::from_str(&json).unwrap();
        back.rebuild_edge_index();
        assert_eq!(g, back);
        assert!(back.has_edge(NodeId(0), NodeId(1)));
        assert_eq!(back.edge_count(), 4);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn adding_edge_with_unknown_endpoint_panics() {
        let mut g = path_graph(2);
        g.add_edge(NodeId(0), NodeId(7));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let g = DataGraph::with_capacity(10, 20);
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }
}
