//! Node attributes and comparison operators.
//!
//! A data-graph node carries a tuple `f_A(v) = (A_1 = a_1, ..., A_n = a_n)` of
//! attribute/constant pairs (Section 2.1 of the paper). Pattern nodes test
//! those attributes with atomic formulas `A op a` where
//! `op ∈ {<, <=, =, !=, >, >=}` (Section 2.1, definition of b-patterns).

use std::cmp::Ordering;
use std::fmt;

/// A constant attribute value stored on a data-graph node or compared against
/// in a pattern predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Integer-valued attribute (ids, years, ages, hop counts, ratings...).
    Int(i64),
    /// Floating-point attribute (scores, weights).
    Float(f64),
    /// String attribute (labels, names, categories).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl AttrValue {
    /// Returns a short name for the value's type, used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            AttrValue::Int(_) => "int",
            AttrValue::Float(_) => "float",
            AttrValue::Str(_) => "str",
            AttrValue::Bool(_) => "bool",
        }
    }

    /// Compares two values if they are of comparable types.
    ///
    /// Integers and floats are mutually comparable (promoted to `f64`);
    /// strings compare lexicographically; booleans compare as `false < true`.
    /// Values of incomparable types return `None`, which makes every atomic
    /// formula over them evaluate to `false` (a node that does not carry the
    /// attribute with a compatible type simply does not satisfy the predicate).
    pub fn partial_cmp_value(&self, other: &AttrValue) -> Option<Ordering> {
        match (self, other) {
            (AttrValue::Int(a), AttrValue::Int(b)) => Some(a.cmp(b)),
            (AttrValue::Float(a), AttrValue::Float(b)) => a.partial_cmp(b),
            (AttrValue::Int(a), AttrValue::Float(b)) => (*a as f64).partial_cmp(b),
            (AttrValue::Float(a), AttrValue::Int(b)) => a.partial_cmp(&(*b as f64)),
            (AttrValue::Str(a), AttrValue::Str(b)) => Some(a.cmp(b)),
            (AttrValue::Bool(a), AttrValue::Bool(b)) => Some(a.cmp(b)),
            _ => None,
        }
    }
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Int(v) => write!(f, "{v}"),
            AttrValue::Float(v) => write!(f, "{v}"),
            AttrValue::Str(v) => write!(f, "{v:?}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<i64> for AttrValue {
    fn from(value: i64) -> Self {
        AttrValue::Int(value)
    }
}

impl From<i32> for AttrValue {
    fn from(value: i32) -> Self {
        AttrValue::Int(i64::from(value))
    }
}

impl From<f64> for AttrValue {
    fn from(value: f64) -> Self {
        AttrValue::Float(value)
    }
}

impl From<&str> for AttrValue {
    fn from(value: &str) -> Self {
        AttrValue::Str(value.to_owned())
    }
}

impl From<String> for AttrValue {
    fn from(value: String) -> Self {
        AttrValue::Str(value)
    }
}

impl From<bool> for AttrValue {
    fn from(value: bool) -> Self {
        AttrValue::Bool(value)
    }
}

/// Comparison operator of an atomic formula `A op a`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompareOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl CompareOp {
    /// Evaluates `lhs op rhs`.
    ///
    /// Returns `false` when the two values are of incomparable types, except
    /// for `!=`, which is `true` for incomparable values (they are certainly
    /// not equal).
    pub fn eval(self, lhs: &AttrValue, rhs: &AttrValue) -> bool {
        match lhs.partial_cmp_value(rhs) {
            Some(ord) => match self {
                CompareOp::Lt => ord == Ordering::Less,
                CompareOp::Le => ord != Ordering::Greater,
                CompareOp::Eq => ord == Ordering::Equal,
                CompareOp::Ne => ord != Ordering::Equal,
                CompareOp::Gt => ord == Ordering::Greater,
                CompareOp::Ge => ord != Ordering::Less,
            },
            None => self == CompareOp::Ne,
        }
    }

    /// The textual symbol of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            CompareOp::Lt => "<",
            CompareOp::Le => "<=",
            CompareOp::Eq => "=",
            CompareOp::Ne => "!=",
            CompareOp::Gt => ">",
            CompareOp::Ge => ">=",
        }
    }
}

impl fmt::Display for CompareOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.symbol())
    }
}

/// The attribute tuple `f_A(v)` of a data-graph node.
///
/// Attributes are stored as a vector sorted by attribute name so that
/// predicate evaluation is a linear merge over the (typically tiny) tuple,
/// matching the "attributes sorted in the same order" assumption used in the
/// paper's complexity analysis of `Match` (Section 3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Attributes {
    entries: Vec<(String, AttrValue)>,
}

impl Attributes {
    /// Creates an empty attribute tuple.
    pub fn new() -> Self {
        Attributes { entries: Vec::new() }
    }

    /// Creates an attribute tuple with a single `label` attribute, the common
    /// case for normal patterns and label-only graphs (graph simulation).
    pub fn labeled(label: impl Into<String>) -> Self {
        let mut attrs = Attributes::new();
        attrs.set("label", AttrValue::Str(label.into()));
        attrs
    }

    /// Sets (or replaces) attribute `name`.
    pub fn set(&mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> &mut Self {
        let name = name.into();
        let value = value.into();
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(&name)) {
            Ok(pos) => self.entries[pos].1 = value,
            Err(pos) => self.entries.insert(pos, (name, value)),
        }
        self
    }

    /// Builder-style variant of [`Attributes::set`].
    pub fn with(mut self, name: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up attribute `name`.
    pub fn get(&self, name: &str) -> Option<&AttrValue> {
        self.entries
            .binary_search_by(|(n, _)| n.as_str().cmp(name))
            .ok()
            .map(|pos| &self.entries[pos].1)
    }

    /// Returns the node label (the `label` attribute) if present.
    pub fn label(&self) -> Option<&str> {
        match self.get("label") {
            Some(AttrValue::Str(s)) => Some(s.as_str()),
            _ => None,
        }
    }

    /// Number of attributes in the tuple.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the tuple carries no attributes.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &AttrValue)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }

    /// Removes attribute `name`, returning its previous value.
    pub fn remove(&mut self, name: &str) -> Option<AttrValue> {
        match self.entries.binary_search_by(|(n, _)| n.as_str().cmp(name)) {
            Ok(pos) => Some(self.entries.remove(pos).1),
            Err(_) => None,
        }
    }
}

impl fmt::Display for Attributes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (name, value)) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{name}={value}")?;
        }
        write!(f, ")")
    }
}

impl<N: Into<String>, V: Into<AttrValue>> FromIterator<(N, V)> for Attributes {
    fn from_iter<T: IntoIterator<Item = (N, V)>>(iter: T) -> Self {
        let mut attrs = Attributes::new();
        for (name, value) in iter {
            attrs.set(name, value);
        }
        attrs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compare_ints_and_floats() {
        assert!(CompareOp::Lt.eval(&AttrValue::Int(3), &AttrValue::Int(5)));
        assert!(CompareOp::Ge.eval(&AttrValue::Float(2.5), &AttrValue::Int(2)));
        assert!(CompareOp::Eq.eval(&AttrValue::Int(2), &AttrValue::Float(2.0)));
        assert!(!CompareOp::Gt.eval(&AttrValue::Int(1), &AttrValue::Int(1)));
    }

    #[test]
    fn compare_strings_and_bools() {
        assert!(CompareOp::Eq.eval(&AttrValue::from("CTO"), &AttrValue::from("CTO")));
        assert!(CompareOp::Ne.eval(&AttrValue::from("CTO"), &AttrValue::from("DB")));
        assert!(CompareOp::Lt.eval(&AttrValue::from("Apple"), &AttrValue::from("Banana")));
        assert!(CompareOp::Lt.eval(&AttrValue::Bool(false), &AttrValue::Bool(true)));
    }

    #[test]
    fn incomparable_types_fail_except_ne() {
        let s = AttrValue::from("x");
        let i = AttrValue::Int(1);
        assert!(!CompareOp::Eq.eval(&s, &i));
        assert!(!CompareOp::Lt.eval(&s, &i));
        assert!(CompareOp::Ne.eval(&s, &i));
    }

    #[test]
    fn attributes_set_get_replace() {
        let mut attrs = Attributes::new();
        attrs.set("job", "CTO").set("age", 41).set("job", "DB");
        assert_eq!(attrs.len(), 2);
        assert_eq!(attrs.get("job"), Some(&AttrValue::from("DB")));
        assert_eq!(attrs.get("age"), Some(&AttrValue::Int(41)));
        assert_eq!(attrs.get("missing"), None);
    }

    #[test]
    fn attributes_sorted_iteration() {
        let attrs = Attributes::new().with("z", 1).with("a", 2).with("m", 3);
        let names: Vec<&str> = attrs.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["a", "m", "z"]);
    }

    #[test]
    fn labeled_constructor_and_label_accessor() {
        let attrs = Attributes::labeled("AM");
        assert_eq!(attrs.label(), Some("AM"));
        let unlabeled = Attributes::new().with("job", "CTO");
        assert_eq!(unlabeled.label(), None);
    }

    #[test]
    fn remove_attribute() {
        let mut attrs = Attributes::labeled("x").with("k", 1);
        assert_eq!(attrs.remove("k"), Some(AttrValue::Int(1)));
        assert_eq!(attrs.remove("k"), None);
        assert_eq!(attrs.len(), 1);
    }

    #[test]
    fn from_iterator_builds_sorted_tuple() {
        let attrs: Attributes = vec![("b", 2), ("a", 1)].into_iter().collect();
        assert_eq!(attrs.get("a"), Some(&AttrValue::Int(1)));
        assert_eq!(attrs.get("b"), Some(&AttrValue::Int(2)));
    }

    #[test]
    fn display_formats() {
        let attrs = Attributes::new().with("age", 3).with("name", "Ann");
        assert_eq!(attrs.to_string(), r#"(age=3, name="Ann")"#);
        assert_eq!(CompareOp::Le.to_string(), "<=");
    }
}
