//! Graph updates `ΔG`: unit edge insertions/deletions and batch updates.
//!
//! The paper considers *unit updates* (a single edge insertion or deletion)
//! and *batch updates* (a list of deletions and insertions mixed together,
//! Section 4). Node insertions can be modelled by adding isolated nodes to the
//! graph up front and connecting them with edge insertions, which is how the
//! generators produce evolving graphs.

use crate::graph::DataGraph;
use crate::hash::FastHashMap;
use crate::node::NodeId;
use crate::shard::{ShardPlan, PARALLEL_WORK_THRESHOLD};
use std::fmt;

/// A unit update: one edge insertion or deletion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Update {
    /// Insert the edge `(from, to)`.
    InsertEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
    /// Delete the edge `(from, to)`.
    DeleteEdge {
        /// Source node.
        from: NodeId,
        /// Target node.
        to: NodeId,
    },
}

impl Update {
    /// Convenience constructor for an insertion.
    pub fn insert(from: NodeId, to: NodeId) -> Self {
        Update::InsertEdge { from, to }
    }

    /// Convenience constructor for a deletion.
    pub fn delete(from: NodeId, to: NodeId) -> Self {
        Update::DeleteEdge { from, to }
    }

    /// The edge `(from, to)` touched by the update.
    pub fn endpoints(&self) -> (NodeId, NodeId) {
        match *self {
            Update::InsertEdge { from, to } | Update::DeleteEdge { from, to } => (from, to),
        }
    }

    /// True for insertions.
    pub fn is_insert(&self) -> bool {
        matches!(self, Update::InsertEdge { .. })
    }

    /// True for deletions.
    pub fn is_delete(&self) -> bool {
        matches!(self, Update::DeleteEdge { .. })
    }

    /// The update that undoes this one.
    pub fn inverse(&self) -> Update {
        match *self {
            Update::InsertEdge { from, to } => Update::DeleteEdge { from, to },
            Update::DeleteEdge { from, to } => Update::InsertEdge { from, to },
        }
    }

    /// Applies the update to `graph`.
    ///
    /// Returns `true` if the graph actually changed (the inserted edge was
    /// absent / the deleted edge was present).
    pub fn apply(&self, graph: &mut DataGraph) -> bool {
        match *self {
            Update::InsertEdge { from, to } => graph.add_edge(from, to),
            Update::DeleteEdge { from, to } => graph.remove_edge(from, to),
        }
    }

    /// True if applying the update would change `graph`.
    pub fn is_effective(&self, graph: &DataGraph) -> bool {
        let (from, to) = self.endpoints();
        match self {
            Update::InsertEdge { .. } => !graph.has_edge(from, to),
            Update::DeleteEdge { .. } => graph.has_edge(from, to),
        }
    }
}

impl fmt::Display for Update {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Update::InsertEdge { from, to } => write!(f, "+({from}, {to})"),
            Update::DeleteEdge { from, to } => write!(f, "-({from}, {to})"),
        }
    }
}

/// A batch update `ΔG`: an ordered list of unit updates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchUpdate {
    updates: Vec<Update>,
}

impl BatchUpdate {
    /// Creates an empty batch.
    pub fn new() -> Self {
        BatchUpdate::default()
    }

    /// Wraps an existing list of updates.
    pub fn from_updates(updates: Vec<Update>) -> Self {
        BatchUpdate { updates }
    }

    /// Appends a unit update.
    pub fn push(&mut self, update: Update) {
        self.updates.push(update);
    }

    /// Appends an insertion.
    pub fn insert(&mut self, from: NodeId, to: NodeId) {
        self.push(Update::insert(from, to));
    }

    /// Appends a deletion.
    pub fn delete(&mut self, from: NodeId, to: NodeId) {
        self.push(Update::delete(from, to));
    }

    /// The number of unit updates `|ΔG|`.
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// Iterates over the unit updates in order.
    pub fn iter(&self) -> impl Iterator<Item = &Update> {
        self.updates.iter()
    }

    /// The underlying updates.
    pub fn updates(&self) -> &[Update] {
        &self.updates
    }

    /// Number of insertions in the batch.
    pub fn insertion_count(&self) -> usize {
        self.updates.iter().filter(|u| u.is_insert()).count()
    }

    /// Number of deletions in the batch.
    pub fn deletion_count(&self) -> usize {
        self.updates.iter().filter(|u| u.is_delete()).count()
    }

    /// Applies all updates in order; returns how many actually changed the graph.
    pub fn apply(&self, graph: &mut DataGraph) -> usize {
        self.updates.iter().filter(|u| u.apply(graph)).count()
    }

    /// The batch that undoes this one (inverted updates in reverse order).
    pub fn inverse(&self) -> BatchUpdate {
        BatchUpdate { updates: self.updates.iter().rev().map(Update::inverse).collect() }
    }

    /// Splits the batch into `(deletions, insertions)` preserving order within
    /// each class. `IncMatch` processes deletions before insertions
    /// (Section 5.2, Fig. 10 lines 2-5).
    pub fn partition(&self) -> (Vec<Update>, Vec<Update>) {
        let mut deletions = Vec::new();
        let mut insertions = Vec::new();
        for update in &self.updates {
            if update.is_delete() {
                deletions.push(*update);
            } else {
                insertions.push(*update);
            }
        }
        (deletions, insertions)
    }
}

/// Net-effect reduction over one slice of `(batch position, update)` pairs —
/// the per-shard kernel of `minDelta` step 1 (Section 5.2, Fig. 10).
///
/// The slice must be in ascending batch-position order (any subsequence of a
/// batch qualifies, as long as it contains *every* update touching the edges
/// it covers — the sharded reducers partition by source node, which
/// guarantees that). The result contains, for every edge whose final presence
/// differs from its presence in `graph`, one netted update tagged with the
/// position at which the batch first touched that edge, in ascending
/// first-touch order. Concatenating per-shard results and sorting by the tag
/// therefore reproduces the sequential reduction's output **order** exactly,
/// not just its set.
pub fn net_effective_updates(graph: &DataGraph, updates: &[(u32, Update)]) -> Vec<(u32, Update)> {
    // Track the simulated final presence per touched edge, in first-touch order.
    let mut order: Vec<(u32, (NodeId, NodeId))> = Vec::new();
    let mut presence: FastHashMap<(NodeId, NodeId), (bool, bool)> = FastHashMap::default(); // (initial, current)
    for &(pos, update) in updates {
        let key = update.endpoints();
        let entry = presence.entry(key).or_insert_with(|| {
            order.push((pos, key));
            let present = graph.has_edge(key.0, key.1);
            (present, present)
        });
        entry.1 = update.is_insert();
    }
    let mut effective = Vec::new();
    for (pos, key) in order {
        let (initial, fin) = presence[&key];
        if initial != fin {
            effective.push((
                pos,
                if fin { Update::insert(key.0, key.1) } else { Update::delete(key.0, key.1) },
            ));
        }
    }
    effective
}

/// Removes updates whose net effect on each edge is nil (e.g. an insertion
/// followed by a deletion of the same edge), returning the minimal effective
/// update list — in the order the batch first touched each surviving edge —
/// and the number of cancelled unit updates. `minDelta` step 1.
///
/// Delegates to [`net_effective_updates`] so the netting semantics exist in
/// exactly one place — the sharded and sequential reductions can never
/// diverge. The transient position tags cost one `Vec<(u32, Update)>` copy
/// of the batch; reduction is not on the per-update hot path, so a single
/// algorithm beats saving the copy.
pub fn reduce_batch(graph: &DataGraph, batch: &BatchUpdate) -> (Vec<Update>, usize) {
    let indexed: Vec<(u32, Update)> =
        batch.iter().enumerate().map(|(pos, &update)| (pos as u32, update)).collect();
    let effective: Vec<Update> =
        net_effective_updates(graph, &indexed).into_iter().map(|(_, update)| update).collect();
    let cancelled = batch.len() - effective.len();
    (effective, cancelled)
}

/// [`reduce_batch`] with the presence simulation sharded by each update's
/// **source** node over the node ranges of `plan`: all updates touching an
/// edge share its source, so each shard nets its own edges independently; a
/// deterministic merge (sort by first-touch position) then reproduces the
/// sequential output byte for byte. Threads are only spawned when the batch
/// is large enough to amortise them — the result is identical either way,
/// and for every shard count.
pub fn reduce_batch_sharded(
    graph: &DataGraph,
    batch: &BatchUpdate,
    plan: ShardPlan,
) -> (Vec<Update>, usize) {
    if plan.count == 1 || batch.len() < PARALLEL_WORK_THRESHOLD {
        return reduce_batch(graph, batch);
    }
    let mut per_shard: Vec<Vec<(u32, Update)>> = vec![Vec::new(); plan.count];
    for (pos, &update) in batch.iter().enumerate() {
        per_shard[plan.owner(update.endpoints().0.index())].push((pos as u32, update));
    }
    let mut merged: Vec<(u32, Update)> = std::thread::scope(|scope| {
        let handles: Vec<_> = per_shard
            .into_iter()
            .map(|slice| scope.spawn(move || net_effective_updates(graph, &slice)))
            .collect();
        handles.into_iter().flat_map(|h| h.join().expect("reduction shard panicked")).collect()
    });
    merged.sort_unstable_by_key(|&(pos, _)| pos);
    let effective: Vec<Update> = merged.into_iter().map(|(_, update)| update).collect();
    let cancelled = batch.len() - effective.len();
    (effective, cancelled)
}

// ---------------------------------------------------------------------------
// Batch validation and the typed apply errors
// ---------------------------------------------------------------------------

/// Why one unit update of a batch was rejected by [`validate_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RejectReason {
    /// An endpoint of the edge is not a node of the graph. Applying such an
    /// update would panic (`add_edge`) or silently no-op (`remove_edge`), and
    /// feeding it to the sharded mutation path would corrupt the edge index.
    NodeOutOfRange,
    /// The inserted edge is already present at this point of the batch
    /// (either in the pre-batch graph or inserted by an earlier update).
    DuplicateInsert,
    /// The deleted edge is absent at this point of the batch (never present,
    /// or already deleted by an earlier update).
    AbsentDelete,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::NodeOutOfRange => write!(f, "endpoint out of range"),
            RejectReason::DuplicateInsert => write!(f, "inserted edge already present"),
            RejectReason::AbsentDelete => write!(f, "deleted edge absent"),
        }
    }
}

/// One rejected unit update: its position in the batch, the update itself and
/// the reason it was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpdateRejection {
    /// Index of the update within the batch.
    pub position: usize,
    /// The offending update.
    pub update: Update,
    /// Why it was rejected.
    pub reason: RejectReason,
}

impl fmt::Display for UpdateRejection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at position {}: {}", self.update, self.position, self.reason)
    }
}

/// How a contained mid-batch panic left the index — the payload of
/// [`ApplyError::StagePanicked`]. Produced by the engines'
/// `catch_unwind`-based containment: the panic (an armed failpoint, or a real
/// bug) is caught at the batch boundary, the [`DataGraph`] mutation is undone
/// by replaying the inverse of the applied effective updates, and the
/// auxiliary match state is either untouched (early stages — the index stays
/// usable) or unknowable (late stages — the index is poisoned until
/// `recover()` rebuilds it from the graph).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StagePanic {
    /// The pipeline stage that was executing when the panic surfaced.
    pub stage: &'static str,
    /// The panic payload, rendered as text.
    pub message: String,
    /// True iff the graph was restored to its pre-batch edge set. (Adjacency
    /// *order* may differ after a rollback of a partially applied mutation;
    /// the edge set, attributes and edge count are exact, and no engine
    /// result depends on adjacency order.)
    pub rolled_back: bool,
    /// True iff the index's auxiliary state may have been torn and the index
    /// was poisoned: every read now errors until `recover()` is called.
    pub poisoned: bool,
}

impl fmt::Display for StagePanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "panic during the {} stage ({}); graph {}, index {}",
            self.stage,
            self.message,
            if self.rolled_back { "rolled back" } else { "unchanged" },
            if self.poisoned { "poisoned (recover() to rebuild)" } else { "intact" },
        )
    }
}

/// Typed error of the fallible apply/read APIs
/// (`try_apply_batch`, `apply_batch_lenient`, `try_matches`).
#[derive(Debug, Clone, PartialEq)]
pub enum ApplyError {
    /// Strict validation rejected the batch; nothing was applied and the
    /// index and graph are untouched. Carries every rejected update.
    InvalidBatch(Vec<UpdateRejection>),
    /// The index was poisoned by an earlier contained panic; call `recover()`
    /// before applying further updates or reading matches.
    Poisoned,
    /// A panic surfaced mid-batch and was contained; see [`StagePanic`] for
    /// what state survived.
    StagePanicked(StagePanic),
}

impl fmt::Display for ApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplyError::InvalidBatch(rejections) => {
                write!(f, "batch rejected: {} invalid update(s); first: ", rejections.len())?;
                match rejections.first() {
                    Some(first) => write!(f, "{first}"),
                    None => write!(f, "(empty rejection list)"),
                }
            }
            ApplyError::Poisoned => {
                write!(f, "index is poisoned by an earlier contained panic; call recover()")
            }
            ApplyError::StagePanicked(panic) => write!(f, "{panic}"),
        }
    }
}

impl std::error::Error for ApplyError {}

/// Classifies every unit update of `batch` against `graph`, simulating the
/// batch sequentially: an insert is valid iff the edge is absent *at its
/// position* (so delete-then-reinsert churn is valid), a delete is valid iff
/// the edge is present at its position, and any update with an endpoint
/// outside the graph's node set is invalid outright. Returns the rejections
/// in batch order; an empty vector means the batch is fully valid — every
/// update would be effective when applied in order.
///
/// This is the validation pass behind the engines' `try_apply_batch`
/// (rejected-by-default) and `apply_batch_lenient` (skip-and-report) APIs.
/// Out-of-range updates are never tracked in the presence simulation, so one
/// garbage id cannot distort the classification of well-formed updates.
pub fn validate_batch(graph: &DataGraph, batch: &BatchUpdate) -> Vec<UpdateRejection> {
    let mut rejections = Vec::new();
    let mut presence: FastHashMap<(NodeId, NodeId), bool> = FastHashMap::default();
    let nv = graph.node_count();
    for (position, &update) in batch.iter().enumerate() {
        let (from, to) = update.endpoints();
        if from.index() >= nv || to.index() >= nv {
            rejections.push(UpdateRejection {
                position,
                update,
                reason: RejectReason::NodeOutOfRange,
            });
            continue;
        }
        let current = *presence.entry((from, to)).or_insert_with(|| graph.has_edge(from, to));
        match update {
            Update::InsertEdge { .. } if current => {
                rejections.push(UpdateRejection {
                    position,
                    update,
                    reason: RejectReason::DuplicateInsert,
                });
            }
            Update::DeleteEdge { .. } if !current => {
                rejections.push(UpdateRejection {
                    position,
                    update,
                    reason: RejectReason::AbsentDelete,
                });
            }
            _ => {
                presence.insert((from, to), update.is_insert());
            }
        }
    }
    rejections
}

impl FromIterator<Update> for BatchUpdate {
    fn from_iter<T: IntoIterator<Item = Update>>(iter: T) -> Self {
        BatchUpdate { updates: iter.into_iter().collect() }
    }
}

impl IntoIterator for BatchUpdate {
    type Item = Update;
    type IntoIter = std::vec::IntoIter<Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.into_iter()
    }
}

impl<'a> IntoIterator for &'a BatchUpdate {
    type Item = &'a Update;
    type IntoIter = std::slice::Iter<'a, Update>;

    fn into_iter(self) -> Self::IntoIter {
        self.updates.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attributes;

    fn triangle() -> (DataGraph, NodeId, NodeId, NodeId) {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        let c = g.add_node(Attributes::labeled("c"));
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(c, a);
        (g, a, b, c)
    }

    #[test]
    fn unit_update_apply_and_inverse() {
        let (mut g, a, b, c) = triangle();
        let del = Update::delete(a, b);
        assert!(del.is_effective(&g));
        assert!(del.apply(&mut g));
        assert!(!g.has_edge(a, b));
        assert!(!del.is_effective(&g));
        assert!(!del.apply(&mut g), "deleting a missing edge is a no-op");

        let ins = del.inverse();
        assert_eq!(ins, Update::insert(a, b));
        assert!(ins.apply(&mut g));
        assert!(g.has_edge(a, b));

        assert_eq!(Update::insert(b, c).endpoints(), (b, c));
        assert!(Update::insert(b, c).is_insert());
        assert!(Update::delete(b, c).is_delete());
    }

    #[test]
    fn batch_apply_counts_effective_updates() {
        let (mut g, a, b, c) = triangle();
        let mut batch = BatchUpdate::new();
        batch.delete(a, b); // effective
        batch.delete(a, b); // no-op: already deleted
        batch.insert(a, c); // effective
        batch.insert(b, c); // no-op: already present
        assert_eq!(batch.len(), 4);
        assert_eq!(batch.insertion_count(), 2);
        assert_eq!(batch.deletion_count(), 2);
        let changed = batch.apply(&mut g);
        assert_eq!(changed, 2);
        assert!(g.has_edge(a, c));
        assert!(!g.has_edge(a, b));
    }

    #[test]
    fn batch_inverse_restores_graph() {
        let (mut g, a, b, _c) = triangle();
        let original = g.clone();
        let mut batch = BatchUpdate::new();
        batch.delete(a, b);
        batch.insert(b, a);
        batch.apply(&mut g);
        assert_ne!(g, original);
        batch.inverse().apply(&mut g);
        assert_eq!(g, original);
    }

    #[test]
    fn partition_preserves_order() {
        let (_, a, b, c) = triangle();
        let batch: BatchUpdate = vec![
            Update::insert(a, c),
            Update::delete(a, b),
            Update::insert(c, b),
            Update::delete(b, c),
        ]
        .into_iter()
        .collect();
        let (dels, inss) = batch.partition();
        assert_eq!(dels, vec![Update::delete(a, b), Update::delete(b, c)]);
        assert_eq!(inss, vec![Update::insert(a, c), Update::insert(c, b)]);
    }

    #[test]
    fn display_formats() {
        let (_, a, b, _) = triangle();
        assert_eq!(Update::insert(a, b).to_string(), "+(n0, n1)");
        assert_eq!(Update::delete(a, b).to_string(), "-(n0, n1)");
    }

    #[test]
    fn reduce_batch_nets_per_edge_effects() {
        let (g, a, b, c) = triangle();
        let batch: BatchUpdate = vec![
            Update::delete(a, b), // cancelled by the re-insertion below
            Update::insert(c, b), // effective (absent)
            Update::insert(a, b),
            Update::delete(b, c), // effective (present)
            Update::insert(a, c), // effective (absent)
            Update::delete(a, c), // ...cancelled again
        ]
        .into_iter()
        .collect();
        let (effective, cancelled) = reduce_batch(&g, &batch);
        assert_eq!(effective, vec![Update::insert(c, b), Update::delete(b, c)]);
        assert_eq!(cancelled, 4);
    }

    #[test]
    fn sharded_reduction_is_bit_identical_to_sequential() {
        // A large synthetic batch with heavy per-edge churn: the sharded
        // reduction must reproduce the sequential effective list exactly —
        // same updates, same (first-touch) order — for every shard count.
        let n = 50usize;
        let mut g = DataGraph::new();
        for i in 0..n {
            g.add_labeled_node(format!("v{i}"));
        }
        let mut x = 9usize;
        for _ in 0..400 {
            x = (x * 23 + 19) % (n * n);
            let (a, b) = (NodeId((x / n) as u32), NodeId((x % n) as u32));
            if a != b {
                g.add_edge(a, b);
            }
        }
        let mut batch = BatchUpdate::new();
        let mut y = 31usize;
        for step in 0..10_000 {
            y = (y * 41 + 3) % (n * n);
            let (a, b) = (NodeId((y / n) as u32), NodeId((y % n) as u32));
            if a == b {
                continue;
            }
            if step % 3 == 0 {
                batch.delete(a, b);
            } else {
                batch.insert(a, b);
            }
        }
        let (sequential, cancelled_seq) = reduce_batch(&g, &batch);
        assert!(!sequential.is_empty());
        for shards in [2usize, 3, 8] {
            let plan = ShardPlan::new(n, shards);
            let (sharded, cancelled) = reduce_batch_sharded(&g, &batch, plan);
            assert_eq!(sharded, sequential, "effective list diverged at shards={shards}");
            assert_eq!(cancelled, cancelled_seq);
        }
        // Applying the reduced list must land on the same graph as replaying
        // the raw batch.
        let mut raw = g.clone();
        batch.apply(&mut raw);
        let mut reduced = g.clone();
        for update in &sequential {
            assert!(update.apply(&mut reduced), "reduced updates are all effective");
        }
        assert_eq!(raw, reduced);
    }

    #[test]
    fn validate_batch_classifies_each_op_against_simulated_presence() {
        let (g, a, b, c) = triangle(); // edges: a->b, b->c, c->a
        let batch: BatchUpdate = vec![
            Update::delete(a, b),          // valid: present
            Update::insert(a, b),          // valid: absent after the delete
            Update::insert(a, b),          // duplicate: present again
            Update::delete(b, a),          // absent delete: edge never existed
            Update::insert(a, NodeId(9)),  // out of range
            Update::delete(NodeId(12), b), // out of range
            Update::insert(a, c),          // valid: absent
        ]
        .into_iter()
        .collect();
        let rejections = validate_batch(&g, &batch);
        assert_eq!(rejections.len(), 4);
        assert_eq!(
            rejections[0],
            UpdateRejection {
                position: 2,
                update: Update::insert(a, b),
                reason: RejectReason::DuplicateInsert
            }
        );
        assert_eq!(rejections[1].reason, RejectReason::AbsentDelete);
        assert_eq!(rejections[2].reason, RejectReason::NodeOutOfRange);
        assert_eq!(rejections[3].reason, RejectReason::NodeOutOfRange);
        assert_eq!(rejections[3].position, 5);
    }

    #[test]
    fn fully_effective_batches_validate_cleanly() {
        let (g, a, b, c) = triangle();
        let batch: BatchUpdate =
            vec![Update::delete(a, b), Update::insert(b, a), Update::delete(b, c)]
                .into_iter()
                .collect();
        assert!(validate_batch(&g, &batch).is_empty());
        // An out-of-range id must not poison the presence simulation of
        // well-formed updates sharing a position-range.
        let mixed: BatchUpdate =
            vec![Update::insert(NodeId(99), a), Update::delete(a, b)].into_iter().collect();
        let rejections = validate_batch(&g, &mixed);
        assert_eq!(rejections.len(), 1);
        assert_eq!(rejections[0].reason, RejectReason::NodeOutOfRange);
    }

    #[test]
    fn apply_error_display_is_informative() {
        let (g, a, b, _c) = triangle();
        let batch: BatchUpdate = vec![Update::insert(a, b)].into_iter().collect();
        let err = ApplyError::InvalidBatch(validate_batch(&g, &batch));
        let text = err.to_string();
        assert!(text.contains("1 invalid"), "unhelpful: {text}");
        assert!(text.contains("already present"), "unhelpful: {text}");
        let poisoned = ApplyError::Poisoned.to_string();
        assert!(poisoned.contains("recover"), "unhelpful: {poisoned}");
    }

    #[test]
    fn iteration_over_batch() {
        let (_, a, b, c) = triangle();
        let batch: BatchUpdate =
            vec![Update::insert(a, b), Update::delete(b, c)].into_iter().collect();
        let collected: Vec<Update> = (&batch).into_iter().copied().collect();
        assert_eq!(collected.len(), 2);
        let owned: Vec<Update> = batch.clone().into_iter().collect();
        assert_eq!(owned, collected);
        assert_eq!(batch.updates().len(), 2);
    }
}
