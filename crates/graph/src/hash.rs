//! Fast, non-cryptographic hashing for integer-keyed maps and sets.
//!
//! Pattern-matching workloads hash millions of `NodeId`s and `(NodeId, NodeId)`
//! pairs; the default SipHash hasher is a measurable bottleneck there. This
//! module implements the well-known "Fx" multiply–rotate–xor hash (the hasher
//! used inside rustc) so the rest of the workspace can use [`FastHashMap`] and
//! [`FastHashSet`] without pulling in extra dependencies.
//!
//! The hash is **not** resistant to HashDoS; all keys in this workspace are
//! internally generated node identifiers, so that is acceptable.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit Fx hash state.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;
const ROTATE: u32 = 5;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(ROTATE) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in chunks.by_ref() {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(u64::from(i));
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with the fast Fx hash.
pub type FastHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` keyed with the fast Fx hash.
pub type FastHashSet<T> = HashSet<T, FxBuildHasher>;

/// Creates an empty [`FastHashMap`] with at least `capacity` slots.
pub fn map_with_capacity<K, V>(capacity: usize) -> FastHashMap<K, V> {
    FastHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// Creates an empty [`FastHashSet`] with at least `capacity` slots.
pub fn set_with_capacity<T>(capacity: usize) -> FastHashSet<T> {
    FastHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::Hash;

    fn hash_one<T: Hash>(value: &T) -> u64 {
        let mut hasher = FxHasher::default();
        value.hash(&mut hasher);
        hasher.finish()
    }

    #[test]
    fn deterministic_for_same_input() {
        assert_eq!(hash_one(&42u32), hash_one(&42u32));
        assert_eq!(hash_one(&(1u32, 2u32)), hash_one(&(1u32, 2u32)));
        assert_eq!(hash_one(&"hello"), hash_one(&"hello"));
    }

    #[test]
    fn different_inputs_rarely_collide() {
        let hashes: std::collections::HashSet<u64> = (0u32..10_000).map(|i| hash_one(&i)).collect();
        assert_eq!(hashes.len(), 10_000, "unexpected collision among small integers");
    }

    #[test]
    fn map_and_set_round_trip() {
        let mut map: FastHashMap<u32, &str> = map_with_capacity(4);
        map.insert(1, "one");
        map.insert(2, "two");
        assert_eq!(map.get(&1), Some(&"one"));
        assert_eq!(map.len(), 2);

        let mut set: FastHashSet<(u32, u32)> = set_with_capacity(4);
        set.insert((1, 2));
        assert!(set.contains(&(1, 2)));
        assert!(!set.contains(&(2, 1)));
    }

    #[test]
    fn byte_stream_hashing_covers_remainder() {
        // 11 bytes: one full 8-byte chunk plus a 3-byte remainder.
        let a = hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11]);
        let b = hash_one(&[1u8, 2, 3, 4, 5, 6, 7, 8, 9, 10, 12]);
        assert_ne!(a, b);
    }
}
