//! Persistence for data graphs and patterns.
//!
//! Two formats are provided:
//!
//! * **JSON** (via the self-contained [`crate::json`] module) — human-readable,
//!   used for patterns and small fixtures checked into examples and tests;
//! * a **compact binary snapshot** — the topology is stored as raw
//!   little-endian `u32` pairs and the attribute table as an embedded JSON
//!   blob, which keeps multi-hundred-thousand-edge generated datasets cheap to
//!   write and reload from the experiment harness. Format 2 carries a
//!   trailing CRC32 over the whole payload, so truncation *and* bit-rot are
//!   detected on load; the checkpoints of the durability layer
//!   ([`crate::wal`]) embed these snapshots.

use crate::attr::{AttrValue, Attributes};
use crate::graph::DataGraph;
use crate::json::{JsonError, JsonValue};
use crate::node::NodeId;
use crate::pattern::{EdgeBound, Pattern};
use crate::predicate::{Atom, Predicate};
use crate::CompareOp;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while loading or saving graphs and patterns.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialization error.
    Json(JsonError),
    /// The document parsed but does not describe the expected structure.
    Schema(String),
    /// The binary snapshot is malformed.
    Corrupt(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Schema(msg) => write!(f, "schema error: {msg}"),
            IoError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<JsonError> for IoError {
    fn from(e: JsonError) -> Self {
        IoError::Json(e)
    }
}

fn schema(msg: impl Into<String>) -> IoError {
    IoError::Schema(msg.into())
}

/// Magic tag identifying binary graph snapshots. Bumped (from the
/// pre-checksum `0x4947_504d`, "IGPM") when the trailing CRC32 was added, so
/// old readers reject new snapshots outright instead of mis-parsing the
/// checksum as edge data.
const SNAPSHOT_MAGIC: u32 = 0x4947_5032; // "IGP2"
/// The magic of the retired checksum-less format, recognised only to give a
/// precise error.
const SNAPSHOT_MAGIC_V1: u32 = 0x4947_504d; // "IGPM"
/// Snapshot format version. Version 2 appends a little-endian CRC32
/// ([`crate::crc32`]) of every preceding byte, so bit-rot anywhere in the
/// payload — not just a truncation — is detected on load.
const SNAPSHOT_VERSION: u32 = 2;

// ---------------------------------------------------------------------------
// JSON encodings of the domain types
// ---------------------------------------------------------------------------

fn attr_value_to_json(value: &AttrValue) -> JsonValue {
    match value {
        AttrValue::Int(v) => JsonValue::Object(vec![("Int".into(), JsonValue::Int(*v))]),
        AttrValue::Float(v) => JsonValue::Object(vec![("Float".into(), JsonValue::Float(*v))]),
        AttrValue::Str(v) => JsonValue::Object(vec![("Str".into(), JsonValue::Str(v.clone()))]),
        AttrValue::Bool(v) => JsonValue::Object(vec![("Bool".into(), JsonValue::Bool(*v))]),
    }
}

fn attr_value_from_json(value: &JsonValue) -> Result<AttrValue, IoError> {
    let entries = value.as_object().ok_or_else(|| schema("attribute value must be an object"))?;
    let (tag, inner) = entries.first().ok_or_else(|| schema("empty attribute value"))?;
    match tag.as_str() {
        "Int" => inner.as_i64().map(AttrValue::Int).ok_or_else(|| schema("Int wants an integer")),
        "Float" => {
            inner.as_f64().map(AttrValue::Float).ok_or_else(|| schema("Float wants a number"))
        }
        "Str" => inner
            .as_str()
            .map(|s| AttrValue::Str(s.to_string()))
            .ok_or_else(|| schema("Str wants a string")),
        "Bool" => inner.as_bool().map(AttrValue::Bool).ok_or_else(|| schema("Bool wants a bool")),
        other => Err(schema(format!("unknown attribute value tag `{other}`"))),
    }
}

fn attributes_to_json(attrs: &Attributes) -> JsonValue {
    JsonValue::Object(
        attrs.iter().map(|(name, value)| (name.to_string(), attr_value_to_json(value))).collect(),
    )
}

fn attributes_from_json(value: &JsonValue) -> Result<Attributes, IoError> {
    let entries = value.as_object().ok_or_else(|| schema("attributes must be an object"))?;
    let mut attrs = Attributes::new();
    for (name, v) in entries {
        attrs.set(name.clone(), attr_value_from_json(v)?);
    }
    Ok(attrs)
}

fn edge_bound_to_json(bound: EdgeBound) -> JsonValue {
    match bound {
        EdgeBound::Hops(k) => JsonValue::Int(i64::from(k)),
        EdgeBound::Unbounded => JsonValue::Str("*".into()),
    }
}

fn edge_bound_from_json(value: &JsonValue) -> Result<EdgeBound, IoError> {
    match value {
        JsonValue::Str(s) if s == "*" => Ok(EdgeBound::Unbounded),
        JsonValue::Int(k) if *k >= 1 && *k <= i64::from(u32::MAX) => Ok(EdgeBound::Hops(*k as u32)),
        _ => Err(schema("edge bound must be a positive integer or \"*\"")),
    }
}

fn compare_op_from_symbol(symbol: &str) -> Result<CompareOp, IoError> {
    Ok(match symbol {
        "<" => CompareOp::Lt,
        "<=" => CompareOp::Le,
        "=" => CompareOp::Eq,
        "!=" => CompareOp::Ne,
        ">" => CompareOp::Gt,
        ">=" => CompareOp::Ge,
        other => return Err(schema(format!("unknown comparison operator `{other}`"))),
    })
}

fn predicate_to_json(predicate: &Predicate) -> JsonValue {
    JsonValue::Array(
        predicate
            .atoms()
            .iter()
            .map(|atom| {
                JsonValue::Object(vec![
                    ("attr".into(), JsonValue::Str(atom.attr.clone())),
                    ("op".into(), JsonValue::Str(atom.op.symbol().into())),
                    ("value".into(), attr_value_to_json(&atom.value)),
                ])
            })
            .collect(),
    )
}

fn predicate_from_json(value: &JsonValue) -> Result<Predicate, IoError> {
    let atoms = value.as_array().ok_or_else(|| schema("predicate must be an array of atoms"))?;
    let mut predicate = Predicate::any();
    for atom in atoms {
        let attr = atom
            .get("attr")
            .and_then(JsonValue::as_str)
            .ok_or_else(|| schema("atom needs an `attr` string"))?;
        let op = compare_op_from_symbol(
            atom.get("op").and_then(JsonValue::as_str).ok_or_else(|| schema("atom needs `op`"))?,
        )?;
        let value =
            attr_value_from_json(atom.get("value").ok_or_else(|| schema("atom needs `value`"))?)?;
        predicate.push(Atom::new(attr, op, value));
    }
    Ok(predicate)
}

fn node_id_from_json(value: &JsonValue, node_count: usize) -> Result<NodeId, IoError> {
    let raw = value.as_i64().ok_or_else(|| schema("node id must be an integer"))?;
    if raw < 0 || raw as usize >= node_count {
        return Err(schema(format!("node id {raw} out of range (|V| = {node_count})")));
    }
    Ok(NodeId(raw as u32))
}

/// Serializes a graph to a JSON string.
pub fn graph_to_json(graph: &DataGraph) -> Result<String, IoError> {
    let nodes =
        JsonValue::Array(graph.nodes().map(|v| attributes_to_json(graph.attrs(v))).collect());
    let edges = JsonValue::Array(
        graph
            .edges()
            .map(|(from, to)| {
                JsonValue::Array(vec![
                    JsonValue::Int(i64::from(from.0)),
                    JsonValue::Int(i64::from(to.0)),
                ])
            })
            .collect(),
    );
    Ok(JsonValue::Object(vec![("nodes".into(), nodes), ("edges".into(), edges)]).to_string())
}

/// Deserializes a graph from a JSON string.
pub fn graph_from_json(json: &str) -> Result<DataGraph, IoError> {
    let value = JsonValue::parse(json)?;
    let nodes = value
        .get("nodes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| schema("graph needs a `nodes` array"))?;
    let edges = value
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| schema("graph needs an `edges` array"))?;
    let mut graph = DataGraph::with_capacity(nodes.len(), edges.len());
    for node in nodes {
        graph.add_node(attributes_from_json(node)?);
    }
    for edge in edges {
        let pair = edge.as_array().ok_or_else(|| schema("edge must be a [from, to] pair"))?;
        if pair.len() != 2 {
            return Err(schema("edge must be a [from, to] pair"));
        }
        let from = node_id_from_json(&pair[0], graph.node_count())?;
        let to = node_id_from_json(&pair[1], graph.node_count())?;
        graph.add_edge(from, to);
    }
    Ok(graph)
}

/// Writes a graph as JSON to `path`.
pub fn save_graph_json(graph: &DataGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, graph_to_json(graph)?)?;
    Ok(())
}

/// Reads a graph from a JSON file.
pub fn load_graph_json(path: impl AsRef<Path>) -> Result<DataGraph, IoError> {
    graph_from_json(&fs::read_to_string(path)?)
}

/// Serializes a pattern to a JSON string.
pub fn pattern_to_json(pattern: &Pattern) -> Result<String, IoError> {
    let nodes = JsonValue::Array(
        pattern.nodes().map(|u| predicate_to_json(pattern.predicate(u))).collect(),
    );
    let edges = JsonValue::Array(
        pattern
            .edges()
            .iter()
            .map(|edge| {
                JsonValue::Object(vec![
                    ("from".into(), JsonValue::Int(i64::from(edge.from.0))),
                    ("to".into(), JsonValue::Int(i64::from(edge.to.0))),
                    ("bound".into(), edge_bound_to_json(edge.bound)),
                ])
            })
            .collect(),
    );
    Ok(JsonValue::Object(vec![("nodes".into(), nodes), ("edges".into(), edges)]).to_string())
}

/// Deserializes a pattern from a JSON string.
pub fn pattern_from_json(json: &str) -> Result<Pattern, IoError> {
    let value = JsonValue::parse(json)?;
    let nodes = value
        .get("nodes")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| schema("pattern needs a `nodes` array"))?;
    let edges = value
        .get("edges")
        .and_then(JsonValue::as_array)
        .ok_or_else(|| schema("pattern needs an `edges` array"))?;
    let mut pattern = Pattern::new();
    for node in nodes {
        pattern.add_node(predicate_from_json(node)?);
    }
    for edge in edges {
        let from = node_id_from_json(
            edge.get("from").ok_or_else(|| schema("pattern edge needs `from`"))?,
            pattern.node_count(),
        )?;
        let to = node_id_from_json(
            edge.get("to").ok_or_else(|| schema("pattern edge needs `to`"))?,
            pattern.node_count(),
        )?;
        let bound = edge_bound_from_json(
            edge.get("bound").ok_or_else(|| schema("pattern edge needs `bound`"))?,
        )?;
        pattern.add_edge(crate::PatternNodeId(from.0), crate::PatternNodeId(to.0), bound);
    }
    Ok(pattern)
}

/// Writes a pattern as JSON to `path`.
pub fn save_pattern_json(pattern: &Pattern, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, pattern_to_json(pattern)?)?;
    Ok(())
}

/// Reads a pattern from a JSON file.
pub fn load_pattern_json(path: impl AsRef<Path>) -> Result<Pattern, IoError> {
    pattern_from_json(&fs::read_to_string(path)?)
}

// ---------------------------------------------------------------------------
// Binary snapshots
// ---------------------------------------------------------------------------

fn put_u32_le(buf: &mut Vec<u8>, value: u32) {
    buf.extend_from_slice(&value.to_le_bytes());
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn get_u32_le(&mut self) -> Result<u32, IoError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(IoError::Corrupt("snapshot too short".into()));
        }
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u32::from_le_bytes(raw))
    }

    fn get_u64_le(&mut self) -> Result<u64, IoError> {
        let end = self.pos + 8;
        if end > self.bytes.len() {
            return Err(IoError::Corrupt("snapshot too short".into()));
        }
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.bytes[self.pos..end]);
        self.pos = end;
        Ok(u64::from_le_bytes(raw))
    }

    fn take(&mut self, len: usize) -> Result<&'a [u8], IoError> {
        let end = self
            .pos
            .checked_add(len)
            .ok_or_else(|| IoError::Corrupt("snapshot length overflow".into()))?;
        if end > self.bytes.len() {
            return Err(IoError::Corrupt("truncated snapshot body".into()));
        }
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }
}

/// Encodes a graph as a compact binary snapshot. The last four bytes are a
/// little-endian CRC32 of everything before them; [`graph_from_snapshot`]
/// refuses payloads whose checksum does not match, so bit-rot in the
/// attribute blob or the edge list is detected instead of silently decoded.
///
/// The snapshot preserves adjacency **order**, not just the edge set: the
/// edge list is written in out-adjacency order and followed by each node's
/// incoming-adjacency list in storage order (swap-removes scramble the two
/// sides independently, so neither order is derivable from the other). A
/// round trip is therefore [`DataGraph::identical_to`]-exact — the level of
/// identity the durable checkpoints ([`crate::wal`]) hand to crash recovery.
pub fn graph_to_snapshot(graph: &DataGraph) -> Result<Vec<u8>, IoError> {
    let attr_blob =
        JsonValue::Array(graph.nodes().map(|v| attributes_to_json(graph.attrs(v))).collect())
            .to_string()
            .into_bytes();

    let mut buf =
        Vec::with_capacity(28 + attr_blob.len() + graph.edge_count() * 12 + graph.node_count() * 4);
    put_u32_le(&mut buf, SNAPSHOT_MAGIC);
    put_u32_le(&mut buf, SNAPSHOT_VERSION);
    put_u32_le(&mut buf, graph.node_count() as u32);
    put_u32_le(&mut buf, graph.edge_count() as u32);
    buf.extend_from_slice(&(attr_blob.len() as u64).to_le_bytes());
    buf.extend_from_slice(&attr_blob);
    for (from, to) in graph.edges() {
        put_u32_le(&mut buf, from.0);
        put_u32_le(&mut buf, to.0);
    }
    for v in graph.nodes() {
        let parents = graph.parents(v);
        put_u32_le(&mut buf, parents.len() as u32);
        for &p in parents {
            put_u32_le(&mut buf, p.0);
        }
    }
    let checksum = crate::crc32::crc32(&buf);
    put_u32_le(&mut buf, checksum);
    Ok(buf)
}

/// Decodes a graph from a binary snapshot produced by [`graph_to_snapshot`].
pub fn graph_from_snapshot(bytes: &[u8]) -> Result<DataGraph, IoError> {
    let mut cursor = Cursor { bytes, pos: 0 };
    let magic = cursor.get_u32_le()?;
    if magic == SNAPSHOT_MAGIC_V1 {
        return Err(IoError::Corrupt(
            "unsupported pre-checksum snapshot (format 1); regenerate it".into(),
        ));
    }
    if magic != SNAPSHOT_MAGIC {
        return Err(IoError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = cursor.get_u32_le()?;
    if version != SNAPSHOT_VERSION {
        return Err(IoError::Corrupt(format!("unsupported version {version}")));
    }
    // Verify the trailing checksum before trusting any length field in the
    // body: a flipped bit in `attr_len` would otherwise turn into a bogus
    // "truncated" error (or a giant allocation) instead of a checksum report.
    if bytes.len() < cursor.pos + 4 {
        return Err(IoError::Corrupt("snapshot too short for a checksum".into()));
    }
    let body = &bytes[..bytes.len() - 4];
    let mut stored = [0u8; 4];
    stored.copy_from_slice(&bytes[bytes.len() - 4..]);
    let stored = u32::from_le_bytes(stored);
    let computed = crate::crc32::crc32(body);
    if stored != computed {
        return Err(IoError::Corrupt(format!(
            "snapshot checksum mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"
        )));
    }
    let mut cursor = Cursor { bytes: body, pos: cursor.pos };
    let node_count = cursor.get_u32_le()? as usize;
    let edge_count = cursor.get_u32_le()? as usize;
    let attr_len = cursor.get_u64_le()? as usize;
    let attr_blob = cursor.take(attr_len)?;
    let attr_text = std::str::from_utf8(attr_blob)
        .map_err(|_| IoError::Corrupt("attribute table is not UTF-8".into()))?;
    let attr_json = JsonValue::parse(attr_text)?;
    let attrs = attr_json.as_array().ok_or_else(|| schema("attribute table must be an array"))?;
    if attrs.len() != node_count {
        return Err(IoError::Corrupt(format!(
            "attribute table has {} entries, expected {node_count}",
            attrs.len()
        )));
    }
    let mut graph = DataGraph::with_capacity(node_count, edge_count);
    for attr in attrs {
        graph.add_node(attributes_from_json(attr)?);
    }
    for _ in 0..edge_count {
        let from = NodeId(cursor.get_u32_le()?);
        let to = NodeId(cursor.get_u32_le()?);
        if !graph.contains_node(from) || !graph.contains_node(to) {
            return Err(IoError::Corrupt(format!("edge ({from}, {to}) out of range")));
        }
        graph.add_edge(from, to);
    }
    // The edge list replayed `out[v]` exactly; now reinstate each `inc[v]`'s
    // recorded order (each must be a permutation of what the edges implied).
    for v in 0..node_count {
        let len = cursor.get_u32_le()? as usize;
        let mut order = Vec::with_capacity(len.min(edge_count));
        for _ in 0..len {
            order.push(NodeId(cursor.get_u32_le()?));
        }
        if !graph.set_incoming_order(NodeId(v as u32), order) {
            return Err(IoError::Corrupt(format!(
                "incoming adjacency of node {v} does not match the edge list"
            )));
        }
    }
    if cursor.pos != body.len() {
        return Err(IoError::Corrupt(format!(
            "{} unexpected trailing byte(s) after the edge list",
            body.len() - cursor.pos
        )));
    }
    Ok(graph)
}

/// Writes a binary snapshot of a graph to `path`.
pub fn save_graph_snapshot(graph: &DataGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, graph_to_snapshot(graph)?)?;
    Ok(())
}

/// Reads a binary snapshot of a graph from `path`.
pub fn load_graph_snapshot(path: impl AsRef<Path>) -> Result<DataGraph, IoError> {
    graph_from_snapshot(&fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::EdgeBound;
    use crate::predicate::Predicate;

    fn sample_graph() -> DataGraph {
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
        let pat = g.add_node(Attributes::new().with("name", "Pat").with("job", "DB"));
        let bill =
            g.add_node(Attributes::new().with("name", "Bill").with("job", "Bio").with("rate", 4.5));
        g.add_edge(ann, pat);
        g.add_edge(pat, bill);
        g.add_edge(bill, ann);
        g
    }

    fn sample_pattern() -> Pattern {
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::any().and_eq("job", "CTO"));
        let db = p.add_node(Predicate::any().and_eq("job", "DB"));
        p.add_edge(cto, db, EdgeBound::Hops(2));
        p.add_edge(db, cto, EdgeBound::Unbounded);
        p
    }

    #[test]
    fn graph_json_round_trip() {
        let g = sample_graph();
        let json = graph_to_json(&g).unwrap();
        let back = graph_from_json(&json).unwrap();
        assert_eq!(g, back);
        assert!(back.has_edge(NodeId(0), NodeId(1)), "edge index rebuilt");
    }

    #[test]
    fn pattern_json_round_trip() {
        let p = sample_pattern();
        let json = pattern_to_json(&p).unwrap();
        let back = pattern_from_json(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(
            back.edge_bound(crate::PatternNodeId(0), crate::PatternNodeId(1)),
            Some(EdgeBound::Hops(2))
        );
    }

    #[test]
    fn pattern_json_preserves_all_compare_ops() {
        let mut p = Pattern::new();
        let mut pred = Predicate::label("x");
        for op in [CompareOp::Lt, CompareOp::Le, CompareOp::Ne, CompareOp::Gt, CompareOp::Ge] {
            pred = pred.and("w", op, 3);
        }
        p.add_node(pred);
        let back = pattern_from_json(&pattern_to_json(&p).unwrap()).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn graph_snapshot_round_trip() {
        let g = sample_graph();
        let bytes = graph_to_snapshot(&g).unwrap();
        let back = graph_from_snapshot(&bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn snapshot_preserves_adjacency_order_after_churn() {
        // Swap-removes scramble the out- and inc-lists independently; the
        // snapshot must reproduce both orders exactly, not just the edge set.
        let mut g = DataGraph::new();
        let nodes: Vec<NodeId> = (0..6).map(|i| g.add_labeled_node(format!("l{i}"))).collect();
        for &a in &nodes {
            for &b in &nodes {
                if a != b {
                    g.add_edge(a, b);
                }
            }
        }
        g.remove_edge(nodes[0], nodes[3]);
        g.remove_edge(nodes[4], nodes[3]);
        g.remove_edge(nodes[2], nodes[5]);
        g.add_edge(nodes[0], nodes[3]);
        let back = graph_from_snapshot(&graph_to_snapshot(&g).unwrap()).unwrap();
        assert!(g.identical_to(&back), "adjacency order lost in the round trip");
        back.assert_edge_index_consistent();
    }

    #[test]
    fn snapshot_rejects_inconsistent_incoming_section() {
        // A checksum-valid snapshot whose inc section is not a permutation
        // of the edge list is structurally corrupt and must be refused.
        let g = sample_graph(); // ring of 3, in-degree 1 each
        let mut raw = graph_to_snapshot(&g).unwrap();
        let body_len = raw.len() - 4;
        raw[body_len - 4..body_len].copy_from_slice(&7u32.to_le_bytes()); // bogus parent id
        let patched = crate::crc32::crc32(&raw[..body_len]);
        raw[body_len..].copy_from_slice(&patched.to_le_bytes());
        let err = graph_from_snapshot(&raw).unwrap_err();
        assert!(err.to_string().contains("incoming adjacency"), "got: {err}");
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(matches!(graph_from_snapshot(b"nope"), Err(IoError::Corrupt(_))));
        let mut buf = Vec::new();
        put_u32_le(&mut buf, 0xdead_beef);
        put_u32_le(&mut buf, SNAPSHOT_VERSION);
        put_u32_le(&mut buf, 0);
        put_u32_le(&mut buf, 0);
        buf.extend_from_slice(&0u64.to_le_bytes());
        assert!(matches!(graph_from_snapshot(&buf), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let g = sample_graph();
        let mut raw = graph_to_snapshot(&g).unwrap();
        raw[4] = 99; // clobber the version field
        let err = graph_from_snapshot(&raw).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn snapshot_rejects_pre_checksum_format() {
        let g = sample_graph();
        let mut raw = graph_to_snapshot(&g).unwrap();
        raw[..4].copy_from_slice(&0x4947_504du32.to_le_bytes()); // the retired "IGPM" magic
        let err = graph_from_snapshot(&raw).unwrap_err();
        assert!(err.to_string().contains("pre-checksum"), "unhelpful: {err}");
    }

    #[test]
    fn snapshot_detects_payload_bit_rot() {
        // Flipping any single bit after the version field must be caught by
        // the trailing CRC32 — including bits in the attribute blob and the
        // edge list, which the pre-checksum format decoded happily.
        let g = sample_graph();
        let raw = graph_to_snapshot(&g).unwrap();
        for pos in [8usize, 16, 24, raw.len() / 2, raw.len() - 6, raw.len() - 1] {
            let mut rotted = raw.clone();
            rotted[pos] ^= 0x10;
            let err = graph_from_snapshot(&rotted)
                .expect_err(&format!("bit-rot at byte {pos} went undetected"));
            assert!(matches!(err, IoError::Corrupt(_)), "byte {pos}: wrong class: {err}");
        }
    }

    #[test]
    fn snapshot_rejects_truncation_at_every_length() {
        let g = sample_graph();
        let raw = graph_to_snapshot(&g).unwrap();
        for len in 0..raw.len() {
            let err = graph_from_snapshot(&raw[..len])
                .expect_err(&format!("truncation to {len} bytes went undetected"));
            assert!(matches!(err, IoError::Corrupt(_)), "len {len}: wrong class: {err}");
        }
    }

    #[test]
    fn snapshot_rejects_appended_garbage() {
        let g = sample_graph();
        let mut raw = graph_to_snapshot(&g).unwrap();
        raw.extend_from_slice(b"junk");
        assert!(matches!(graph_from_snapshot(&raw), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn io_error_display_strings_are_pinned() {
        // Each variant has its own prefix; `Schema` used to print
        // "json error: …", masquerading as a parse failure.
        let io_err: IoError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert_eq!(io_err.to_string(), "i/o error: missing");
        let json_err = graph_from_json("not json").unwrap_err();
        assert!(matches!(json_err, IoError::Json(_)));
        assert!(json_err.to_string().starts_with("json error: "), "got: {json_err}");
        assert_eq!(
            IoError::Schema("graph needs a `nodes` array".into()).to_string(),
            "schema error: graph needs a `nodes` array"
        );
        assert_eq!(
            IoError::Corrupt("snapshot too short".into()).to_string(),
            "corrupt snapshot: snapshot too short"
        );
        // And the real schema path produces the schema prefix.
        let err = graph_from_json(r#"{"nodes": []}"#).unwrap_err();
        assert!(err.to_string().starts_with("schema error: "), "got: {err}");
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("igpm-io-tests");
        fs::create_dir_all(&dir).unwrap();
        let g = sample_graph();
        let p = sample_pattern();

        let gpath = dir.join("graph.json");
        save_graph_json(&g, &gpath).unwrap();
        assert_eq!(load_graph_json(&gpath).unwrap(), g);

        let ppath = dir.join("pattern.json");
        save_pattern_json(&p, &ppath).unwrap();
        assert_eq!(load_pattern_json(&ppath).unwrap(), p);

        let spath = dir.join("graph.bin");
        save_graph_snapshot(&g, &spath).unwrap();
        assert_eq!(load_graph_snapshot(&spath).unwrap(), g);
    }

    #[test]
    fn error_display() {
        let err = graph_from_json("not json").unwrap_err();
        assert!(err.to_string().contains("json error"));
        let err: IoError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(err.to_string().contains("i/o error"));
        let err = graph_from_json(r#"{"nodes": [], "edges": [[0, 1]]}"#).unwrap_err();
        assert!(err.to_string().contains("out of range"));
    }
}
