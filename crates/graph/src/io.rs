//! Persistence for data graphs and patterns.
//!
//! Two formats are provided:
//!
//! * **JSON** (via `serde_json`) — human-readable, used for patterns and small
//!   fixtures checked into examples and tests;
//! * a **compact binary snapshot** (via `bytes`) — the topology is stored as
//!   raw `u32` pairs and the attribute table as an embedded JSON blob, which
//!   keeps multi-hundred-thousand-edge generated datasets cheap to write and
//!   reload from the experiment harness.

use crate::attr::Attributes;
use crate::graph::DataGraph;
use crate::node::NodeId;
use crate::pattern::Pattern;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors raised while loading or saving graphs and patterns.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Io(io::Error),
    /// JSON (de)serialization error.
    Json(serde_json::Error),
    /// The binary snapshot is malformed.
    Corrupt(String),
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Json(e) => write!(f, "json error: {e}"),
            IoError::Corrupt(msg) => write!(f, "corrupt snapshot: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<io::Error> for IoError {
    fn from(e: io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<serde_json::Error> for IoError {
    fn from(e: serde_json::Error) -> Self {
        IoError::Json(e)
    }
}

/// Magic tag identifying binary graph snapshots.
const SNAPSHOT_MAGIC: u32 = 0x4947_504d; // "IGPM"
/// Snapshot format version.
const SNAPSHOT_VERSION: u32 = 1;

/// Serializes a graph to a JSON string.
pub fn graph_to_json(graph: &DataGraph) -> Result<String, IoError> {
    Ok(serde_json::to_string(graph)?)
}

/// Deserializes a graph from a JSON string (rebuilding its edge index).
pub fn graph_from_json(json: &str) -> Result<DataGraph, IoError> {
    let mut graph: DataGraph = serde_json::from_str(json)?;
    graph.rebuild_edge_index();
    Ok(graph)
}

/// Writes a graph as JSON to `path`.
pub fn save_graph_json(graph: &DataGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, graph_to_json(graph)?)?;
    Ok(())
}

/// Reads a graph from a JSON file.
pub fn load_graph_json(path: impl AsRef<Path>) -> Result<DataGraph, IoError> {
    graph_from_json(&fs::read_to_string(path)?)
}

/// Serializes a pattern to a JSON string.
pub fn pattern_to_json(pattern: &Pattern) -> Result<String, IoError> {
    Ok(serde_json::to_string(pattern)?)
}

/// Deserializes a pattern from a JSON string.
pub fn pattern_from_json(json: &str) -> Result<Pattern, IoError> {
    Ok(serde_json::from_str(json)?)
}

/// Writes a pattern as JSON to `path`.
pub fn save_pattern_json(pattern: &Pattern, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, pattern_to_json(pattern)?)?;
    Ok(())
}

/// Reads a pattern from a JSON file.
pub fn load_pattern_json(path: impl AsRef<Path>) -> Result<Pattern, IoError> {
    pattern_from_json(&fs::read_to_string(path)?)
}

/// Encodes a graph as a compact binary snapshot.
pub fn graph_to_snapshot(graph: &DataGraph) -> Result<Bytes, IoError> {
    let attrs: Vec<&Attributes> = graph.nodes().map(|v| graph.attrs(v)).collect();
    let attr_blob = serde_json::to_vec(&attrs)?;

    let mut buf = BytesMut::with_capacity(24 + attr_blob.len() + graph.edge_count() * 8);
    buf.put_u32_le(SNAPSHOT_MAGIC);
    buf.put_u32_le(SNAPSHOT_VERSION);
    buf.put_u32_le(graph.node_count() as u32);
    buf.put_u32_le(graph.edge_count() as u32);
    buf.put_u64_le(attr_blob.len() as u64);
    buf.put_slice(&attr_blob);
    for (from, to) in graph.edges() {
        buf.put_u32_le(from.0);
        buf.put_u32_le(to.0);
    }
    Ok(buf.freeze())
}

/// Decodes a graph from a binary snapshot produced by [`graph_to_snapshot`].
pub fn graph_from_snapshot(mut bytes: Bytes) -> Result<DataGraph, IoError> {
    if bytes.remaining() < 24 {
        return Err(IoError::Corrupt("snapshot too short".into()));
    }
    let magic = bytes.get_u32_le();
    if magic != SNAPSHOT_MAGIC {
        return Err(IoError::Corrupt(format!("bad magic 0x{magic:08x}")));
    }
    let version = bytes.get_u32_le();
    if version != SNAPSHOT_VERSION {
        return Err(IoError::Corrupt(format!("unsupported version {version}")));
    }
    let node_count = bytes.get_u32_le() as usize;
    let edge_count = bytes.get_u32_le() as usize;
    let attr_len = bytes.get_u64_le() as usize;
    if bytes.remaining() < attr_len + edge_count * 8 {
        return Err(IoError::Corrupt("truncated snapshot body".into()));
    }
    let attr_blob = bytes.split_to(attr_len);
    let attrs: Vec<Attributes> = serde_json::from_slice(&attr_blob)?;
    if attrs.len() != node_count {
        return Err(IoError::Corrupt(format!(
            "attribute table has {} entries, expected {node_count}",
            attrs.len()
        )));
    }
    let mut graph = DataGraph::with_capacity(node_count, edge_count);
    for attr in attrs {
        graph.add_node(attr);
    }
    for _ in 0..edge_count {
        let from = NodeId(bytes.get_u32_le());
        let to = NodeId(bytes.get_u32_le());
        if !graph.contains_node(from) || !graph.contains_node(to) {
            return Err(IoError::Corrupt(format!("edge ({from}, {to}) out of range")));
        }
        graph.add_edge(from, to);
    }
    Ok(graph)
}

/// Writes a binary snapshot of a graph to `path`.
pub fn save_graph_snapshot(graph: &DataGraph, path: impl AsRef<Path>) -> Result<(), IoError> {
    fs::write(path, graph_to_snapshot(graph)?)?;
    Ok(())
}

/// Reads a binary snapshot of a graph from `path`.
pub fn load_graph_snapshot(path: impl AsRef<Path>) -> Result<DataGraph, IoError> {
    let bytes = Bytes::from(fs::read(path)?);
    graph_from_snapshot(bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::EdgeBound;
    use crate::predicate::Predicate;

    fn sample_graph() -> DataGraph {
        let mut g = DataGraph::new();
        let ann = g.add_node(Attributes::new().with("name", "Ann").with("job", "CTO"));
        let pat = g.add_node(Attributes::new().with("name", "Pat").with("job", "DB"));
        let bill = g.add_node(Attributes::new().with("name", "Bill").with("job", "Bio"));
        g.add_edge(ann, pat);
        g.add_edge(pat, bill);
        g.add_edge(bill, ann);
        g
    }

    fn sample_pattern() -> Pattern {
        let mut p = Pattern::new();
        let cto = p.add_node(Predicate::any().and_eq("job", "CTO"));
        let db = p.add_node(Predicate::any().and_eq("job", "DB"));
        p.add_edge(cto, db, EdgeBound::Hops(2));
        p.add_edge(db, cto, EdgeBound::Unbounded);
        p
    }

    #[test]
    fn graph_json_round_trip() {
        let g = sample_graph();
        let json = graph_to_json(&g).unwrap();
        let back = graph_from_json(&json).unwrap();
        assert_eq!(g, back);
        assert!(back.has_edge(NodeId(0), NodeId(1)), "edge index rebuilt");
    }

    #[test]
    fn pattern_json_round_trip() {
        let p = sample_pattern();
        let json = pattern_to_json(&p).unwrap();
        let back = pattern_from_json(&json).unwrap();
        assert_eq!(p, back);
        assert_eq!(back.edge_bound(crate::PatternNodeId(0), crate::PatternNodeId(1)), Some(EdgeBound::Hops(2)));
    }

    #[test]
    fn graph_snapshot_round_trip() {
        let g = sample_graph();
        let bytes = graph_to_snapshot(&g).unwrap();
        let back = graph_from_snapshot(bytes).unwrap();
        assert_eq!(g, back);
    }

    #[test]
    fn snapshot_rejects_garbage() {
        assert!(matches!(graph_from_snapshot(Bytes::from_static(b"nope")), Err(IoError::Corrupt(_))));
        let mut buf = BytesMut::new();
        buf.put_u32_le(0xdeadbeef);
        buf.put_u32_le(SNAPSHOT_VERSION);
        buf.put_u32_le(0);
        buf.put_u32_le(0);
        buf.put_u64_le(0);
        assert!(matches!(graph_from_snapshot(buf.freeze()), Err(IoError::Corrupt(_))));
    }

    #[test]
    fn snapshot_rejects_wrong_version() {
        let g = sample_graph();
        let bytes = graph_to_snapshot(&g).unwrap();
        let mut raw = bytes.to_vec();
        raw[4] = 99; // clobber the version field
        let err = graph_from_snapshot(Bytes::from(raw)).unwrap_err();
        assert!(err.to_string().contains("unsupported version"));
    }

    #[test]
    fn file_round_trips() {
        let dir = std::env::temp_dir().join("igpm-io-tests");
        fs::create_dir_all(&dir).unwrap();
        let g = sample_graph();
        let p = sample_pattern();

        let gpath = dir.join("graph.json");
        save_graph_json(&g, &gpath).unwrap();
        assert_eq!(load_graph_json(&gpath).unwrap(), g);

        let ppath = dir.join("pattern.json");
        save_pattern_json(&p, &ppath).unwrap();
        assert_eq!(load_pattern_json(&ppath).unwrap(), p);

        let spath = dir.join("graph.bin");
        save_graph_snapshot(&g, &spath).unwrap();
        assert_eq!(load_graph_snapshot(&spath).unwrap(), g);
    }

    #[test]
    fn error_display() {
        let err: IoError = serde_json::from_str::<DataGraph>("not json").unwrap_err().into();
        assert!(err.to_string().contains("json error"));
        let err: IoError = io::Error::new(io::ErrorKind::NotFound, "missing").into();
        assert!(err.to_string().contains("i/o error"));
    }
}
