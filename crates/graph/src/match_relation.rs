//! Match relations `S ⊆ V_p × V`.
//!
//! A match for a pattern `P` in a data graph `G` is a binary relation between
//! pattern nodes and data nodes. Bounded simulation and graph simulation
//! compute the unique *maximum* match (Proposition 2.1); the empty relation
//! represents "no match" (`P ⋬ G`).

use crate::node::NodeId;
use crate::pattern::{Pattern, PatternNodeId};
use std::fmt;

/// A match relation: for each pattern node, the sorted set of data nodes
/// matched to it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchRelation {
    per_node: Vec<Vec<NodeId>>,
}

impl MatchRelation {
    /// Creates an empty relation over `pattern_nodes` pattern nodes.
    pub fn empty(pattern_nodes: usize) -> Self {
        MatchRelation { per_node: vec![Vec::new(); pattern_nodes] }
    }

    /// Creates an empty relation shaped after `pattern`.
    pub fn for_pattern(pattern: &Pattern) -> Self {
        MatchRelation::empty(pattern.node_count())
    }

    /// Builds a relation from per-pattern-node match lists (normalising order
    /// and removing duplicates).
    pub fn from_lists<I>(lists: I) -> Self
    where
        I: IntoIterator<Item = Vec<NodeId>>,
    {
        let mut per_node: Vec<Vec<NodeId>> = lists.into_iter().collect();
        for list in &mut per_node {
            list.sort_unstable();
            list.dedup();
        }
        MatchRelation { per_node }
    }

    /// Number of pattern nodes the relation is defined over.
    pub fn pattern_node_count(&self) -> usize {
        self.per_node.len()
    }

    /// Adds the pair `(u, v)` to the relation.
    pub fn add(&mut self, u: PatternNodeId, v: NodeId) {
        let list = &mut self.per_node[u.index()];
        match list.binary_search(&v) {
            Ok(_) => {}
            Err(pos) => list.insert(pos, v),
        }
    }

    /// Removes the pair `(u, v)`; returns `true` if it was present.
    pub fn remove(&mut self, u: PatternNodeId, v: NodeId) -> bool {
        let list = &mut self.per_node[u.index()];
        match list.binary_search(&v) {
            Ok(pos) => {
                list.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The sorted matches of pattern node `u`.
    pub fn matches(&self, u: PatternNodeId) -> &[NodeId] {
        &self.per_node[u.index()]
    }

    /// True if `(u, v)` is in the relation.
    pub fn contains(&self, u: PatternNodeId, v: NodeId) -> bool {
        self.per_node[u.index()].binary_search(&v).is_ok()
    }

    /// Total number of pairs `|S|`.
    pub fn pair_count(&self) -> usize {
        self.per_node.iter().map(Vec::len).sum()
    }

    /// True if the relation contains no pair at all.
    pub fn is_empty(&self) -> bool {
        self.per_node.iter().all(Vec::is_empty)
    }

    /// True if *every* pattern node has at least one match — the condition for
    /// `P ⊴ G` (a nonempty match must be total on the pattern nodes).
    pub fn is_total(&self) -> bool {
        !self.per_node.is_empty() && self.per_node.iter().all(|l| !l.is_empty())
    }

    /// Iterates over all `(pattern node, data node)` pairs.
    pub fn pairs(&self) -> impl Iterator<Item = (PatternNodeId, NodeId)> + '_ {
        self.per_node.iter().enumerate().flat_map(|(u, vs)| {
            let u = PatternNodeId::from_index(u);
            vs.iter().map(move |&v| (u, v))
        })
    }

    /// Clears all pairs, turning this into the empty match.
    pub fn clear(&mut self) {
        for list in &mut self.per_node {
            list.clear();
        }
    }

    /// True if `self ⊆ other` (pairwise containment).
    pub fn is_subset_of(&self, other: &MatchRelation) -> bool {
        if self.per_node.len() != other.per_node.len() {
            return false;
        }
        self.pairs().all(|(u, v)| other.contains(u, v))
    }

    /// The union of two relations over the same pattern.
    pub fn union(&self, other: &MatchRelation) -> MatchRelation {
        assert_eq!(self.per_node.len(), other.per_node.len(), "pattern size mismatch");
        let mut result = self.clone();
        for (u, v) in other.pairs() {
            result.add(u, v);
        }
        result
    }

    /// Pairs present in `self` but not in `other`.
    pub fn difference(&self, other: &MatchRelation) -> Vec<(PatternNodeId, NodeId)> {
        self.pairs().filter(|&(u, v)| !other.contains(u, v)).collect()
    }

    /// The set of data nodes that match at least one pattern node (the node
    /// set `V_r` of the result graph).
    pub fn matched_data_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.per_node.iter().flatten().copied().collect();
        nodes.sort_unstable();
        nodes.dedup();
        nodes
    }
}

/// The per-batch change `ΔM` to a match relation, as explicit
/// `(pattern node, data node)` pairs.
///
/// Both lists are **disjoint**, **deduplicated** and sorted ascending by
/// `(pattern node, data node)` — the deterministic order every engine emits
/// regardless of shard count, so two deltas can be compared with `==` and a
/// stream of deltas is bit-identical across configurations. The delta is
/// expressed against the *observable* match view (the empty relation when
/// `P ⋬ G`), not against raw candidate bookkeeping: applying it to the
/// previous view with [`MatchDelta::apply_to`] yields exactly the next view,
/// `view(t) = view(t-1) ∖ removed ⊎ inserted`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchDelta {
    /// Pairs that entered the match view, ascending by `(u, v)`.
    pub inserted: Vec<(PatternNodeId, NodeId)>,
    /// Pairs that left the match view, ascending by `(u, v)`.
    pub removed: Vec<(PatternNodeId, NodeId)>,
}

impl MatchDelta {
    /// The empty delta (the result of a batch with no observable effect).
    pub fn empty() -> Self {
        MatchDelta::default()
    }

    /// True if the batch changed nothing in the match view.
    pub fn is_empty(&self) -> bool {
        self.inserted.is_empty() && self.removed.is_empty()
    }

    /// `|ΔM|` at the view level: inserted plus removed pairs.
    pub fn len(&self) -> usize {
        self.inserted.len() + self.removed.len()
    }

    /// Patches `view` in place: removes every `removed` pair, inserts every
    /// `inserted` pair. Applying the delta emitted for batch `t` to the full
    /// view at `t-1` yields exactly the full view at `t`.
    pub fn apply_to(&self, view: &mut MatchRelation) {
        for &(u, v) in &self.removed {
            view.remove(u, v);
        }
        for &(u, v) in &self.inserted {
            view.add(u, v);
        }
    }

    /// The delta that turns `before` into `after` (the reference diff the
    /// differential suites compare emitted deltas against).
    pub fn between(before: &MatchRelation, after: &MatchRelation) -> MatchDelta {
        let mut inserted = after.difference(before);
        let mut removed = before.difference(after);
        inserted.sort_unstable();
        removed.sort_unstable();
        MatchDelta { inserted, removed }
    }
}

impl fmt::Display for MatchDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "ΔM: ∅");
        }
        write!(f, "ΔM: +{} / -{} pairs", self.inserted.len(), self.removed.len())
    }
}

impl fmt::Display for MatchRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "∅");
        }
        writeln!(f, "{{")?;
        for (u, vs) in self.per_node.iter().enumerate() {
            if vs.is_empty() {
                continue;
            }
            let rendered: Vec<String> = vs.iter().map(|v| v.to_string()).collect();
            writeln!(f, "  u{u} -> [{}]", rendered.join(", "))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> MatchRelation {
        let mut rel = MatchRelation::empty(3);
        rel.add(PatternNodeId(0), NodeId(5));
        rel.add(PatternNodeId(0), NodeId(2));
        rel.add(PatternNodeId(1), NodeId(7));
        rel.add(PatternNodeId(2), NodeId(1));
        rel
    }

    #[test]
    fn add_contains_remove() {
        let mut rel = sample();
        assert!(rel.contains(PatternNodeId(0), NodeId(5)));
        assert!(!rel.contains(PatternNodeId(1), NodeId(5)));
        assert_eq!(rel.matches(PatternNodeId(0)), &[NodeId(2), NodeId(5)], "matches stay sorted");
        assert_eq!(rel.pair_count(), 4);
        assert!(rel.remove(PatternNodeId(0), NodeId(5)));
        assert!(!rel.remove(PatternNodeId(0), NodeId(5)));
        assert_eq!(rel.pair_count(), 3);
    }

    #[test]
    fn duplicate_adds_are_ignored() {
        let mut rel = MatchRelation::empty(1);
        rel.add(PatternNodeId(0), NodeId(1));
        rel.add(PatternNodeId(0), NodeId(1));
        assert_eq!(rel.pair_count(), 1);
    }

    #[test]
    fn totality_and_emptiness() {
        let mut rel = MatchRelation::empty(2);
        assert!(rel.is_empty());
        assert!(!rel.is_total());
        rel.add(PatternNodeId(0), NodeId(0));
        assert!(!rel.is_empty());
        assert!(!rel.is_total(), "one pattern node still unmatched");
        rel.add(PatternNodeId(1), NodeId(3));
        assert!(rel.is_total());
        rel.clear();
        assert!(rel.is_empty());
        assert!(MatchRelation::empty(0).is_empty());
        assert!(!MatchRelation::empty(0).is_total(), "empty pattern has no total match");
    }

    #[test]
    fn union_subset_difference() {
        let a = sample();
        let mut b = MatchRelation::empty(3);
        b.add(PatternNodeId(0), NodeId(2));
        assert!(b.is_subset_of(&a));
        assert!(!a.is_subset_of(&b));
        let u = a.union(&b);
        assert_eq!(u, a);
        let diff = a.difference(&b);
        assert_eq!(diff.len(), 3);
        assert!(diff.contains(&(PatternNodeId(0), NodeId(5))));
        assert!(
            !b.is_subset_of(&MatchRelation::empty(1)),
            "different pattern sizes are incomparable"
        );
    }

    #[test]
    fn pairs_and_matched_nodes() {
        let rel = sample();
        let pairs: Vec<(PatternNodeId, NodeId)> = rel.pairs().collect();
        assert_eq!(pairs.len(), 4);
        assert_eq!(rel.matched_data_nodes(), vec![NodeId(1), NodeId(2), NodeId(5), NodeId(7)]);
    }

    #[test]
    fn from_lists_normalises() {
        let rel = MatchRelation::from_lists(vec![vec![NodeId(3), NodeId(1), NodeId(3)], vec![]]);
        assert_eq!(rel.matches(PatternNodeId(0)), &[NodeId(1), NodeId(3)]);
        assert!(rel.matches(PatternNodeId(1)).is_empty());
    }

    #[test]
    fn display_renders_nonempty_lines() {
        let rel = sample();
        let text = rel.to_string();
        assert!(text.contains("u0 -> [n2, n5]"));
        assert_eq!(MatchRelation::empty(2).to_string(), "∅");
    }
}
