//! Minimal JSON value, parser and writer.
//!
//! The build environment for this repository has no access to crates.io, so
//! `serde`/`serde_json` are unavailable; persistence ([`crate::io`]) instead
//! uses this self-contained module. It supports the full JSON grammar needed
//! by the graph/pattern formats: objects (order-preserving), arrays, strings
//! with escapes, integers, floats, booleans and null.

use std::fmt;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number without a fractional part or exponent.
    Int(i64),
    /// Any other number.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; key order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            JsonValue::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers are promoted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Int(v) => Some(*v as f64),
            JsonValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Array(items) => Some(items.as_slice()),
            _ => None,
        }
    }

    /// The value as object entries, if it is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(entries) => Some(entries.as_slice()),
            _ => None,
        }
    }

    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut parser = Parser { bytes: text.as_bytes(), pos: 0 };
        parser.skip_ws();
        let value = parser.value()?;
        parser.skip_ws();
        if parser.pos != parser.bytes.len() {
            return Err(parser.error("trailing characters after JSON value"));
        }
        Ok(value)
    }
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Int(v) => write!(f, "{v}"),
            JsonValue::Float(v) => {
                if v.is_finite() {
                    // `{:?}` prints the shortest representation that
                    // round-trips through `f64::from_str`.
                    write!(f, "{v:?}")
                } else {
                    // JSON has no Inf/NaN; degrade to null like serde_json.
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => write_json_string(f, s),
            JsonValue::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            JsonValue::Object(entries) => {
                f.write_str("{")?;
                for (i, (key, value)) in entries.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, key)?;
                    f.write_str(":")?;
                    write!(f, "{value}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_json_string(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

/// Error raised while parsing JSON.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error in the input.
    pub offset: usize,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn error(&self, message: &str) -> JsonError {
        JsonError { message: message.to_string(), offset: self.pos }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(&format!("expected {:?}", b as char)))
        }
    }

    fn expect_literal(&mut self, literal: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            Ok(())
        } else {
            Err(self.error(&format!("expected `{literal}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => {
                self.expect_literal("true")?;
                Ok(JsonValue::Bool(true))
            }
            Some(b'f') => {
                self.expect_literal("false")?;
                Ok(JsonValue::Bool(false))
            }
            Some(b'n') => {
                self.expect_literal("null")?;
                Ok(JsonValue::Null)
            }
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.error("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Object(entries));
                }
                _ => return Err(self.error("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Array(items));
                }
                _ => return Err(self.error("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.error("invalid UTF-8 in string"))?;
                out.push_str(chunk);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self.peek().ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&code) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let low = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&low) {
                                    return Err(self.error("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((code - 0xd800) << 10) + (low - 0xdc00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(code)
                            };
                            out.push(c.ok_or_else(|| self.error("invalid unicode escape"))?);
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => return Err(self.error("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let digits = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("invalid unicode escape"))?;
        let code =
            u32::from_str_radix(digits, 16).map_err(|_| self.error("invalid unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if is_float {
            text.parse::<f64>().map(JsonValue::Float).map_err(|_| self.error("invalid number"))
        } else {
            text.parse::<i64>().map(JsonValue::Int).map_err(|_| self.error("integer out of range"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_scalars() {
        assert_eq!(JsonValue::parse("null").unwrap(), JsonValue::Null);
        assert_eq!(JsonValue::parse("true").unwrap(), JsonValue::Bool(true));
        assert_eq!(JsonValue::parse(" -42 ").unwrap(), JsonValue::Int(-42));
        assert_eq!(JsonValue::parse("2.5").unwrap(), JsonValue::Float(2.5));
        assert_eq!(JsonValue::parse("1e3").unwrap(), JsonValue::Float(1000.0));
        assert_eq!(JsonValue::parse(r#""hi""#).unwrap(), JsonValue::Str("hi".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = JsonValue::parse(r#"{"a": [1, 2.0, "x"], "b": {"c": false}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = JsonValue::Str("line\nquote\" back\\slash \t ünïcode \u{1F600}".into());
        let text = original.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), original);
    }

    #[test]
    fn unicode_escape_parsing() {
        assert_eq!(JsonValue::parse(r#""A😀""#).unwrap(), JsonValue::Str("A\u{1F600}".into()));
        assert!(JsonValue::parse(r#""\ud83d""#).is_err(), "lone high surrogate");
    }

    #[test]
    fn value_round_trips_through_display() {
        let value = JsonValue::Object(vec![
            ("ints".into(), JsonValue::Array(vec![JsonValue::Int(1), JsonValue::Int(-9)])),
            ("f".into(), JsonValue::Float(0.125)),
            ("s".into(), JsonValue::Str("têxt".into())),
            ("flag".into(), JsonValue::Bool(true)),
            ("nothing".into(), JsonValue::Null),
            ("empty_arr".into(), JsonValue::Array(Vec::new())),
            ("empty_obj".into(), JsonValue::Object(Vec::new())),
        ]);
        let text = value.to_string();
        assert_eq!(JsonValue::parse(&text).unwrap(), value);
    }

    #[test]
    fn float_display_round_trips_precisely() {
        for v in [0.1, 1.0 / 3.0, 1e300, -2.2250738585072014e-308, 3.2] {
            let text = JsonValue::Float(v).to_string();
            assert_eq!(JsonValue::parse(&text).unwrap().as_f64(), Some(v));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", r#"{"a" 1}"#, "tru", "01x", r#""unterminated"#, "1 2"] {
            assert!(JsonValue::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn error_reports_offset() {
        let err = JsonValue::parse("[1, !]").unwrap_err();
        assert!(err.offset >= 4);
        assert!(err.to_string().contains("byte"));
    }
}
