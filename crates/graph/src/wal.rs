//! Write-ahead log and checkpoints: the on-disk half of the durability layer.
//!
//! A long-lived index absorbing a continuous update stream must survive the
//! process dying at any instruction. This module provides the two primitives
//! the recovery orchestrator (`igpm_core`'s `DurableIndex`) composes:
//!
//! * a **write-ahead log** ([`Wal`]) of validated batches — length-prefixed,
//!   CRC32-checksummed records carrying a monotone batch sequence number,
//!   appended *before* the batch is applied in memory. The log is split into
//!   *segments* (one file per checkpoint interval) so superseded history can
//!   be pruned without rewriting live files;
//! * **checkpoints** ([`write_checkpoint`] / [`load_latest_checkpoint`]) — an
//!   atomic (write-temp + fsync + rename + directory-fsync) capture of the
//!   graph (as a checksummed [`crate::io`] binary snapshot) together with the
//!   WAL sequence number it covers.
//!
//! Recovery is then: load the newest checkpoint that passes its checksum
//! (falling back to older ones), replay every WAL record with a higher
//! sequence number through the normal batch-apply path, and truncate the log
//! at the first torn or corrupt record. Because replay uses the ordinary
//! apply path and rebuilds use the ordinary sharded build, the recovered
//! state is bit-identical to the never-crashed run by construction — the
//! growth-equals-fresh-build invariant the conformance suites enforce.
//!
//! # WAL record format
//!
//! All integers little-endian:
//!
//! ```text
//! offset  size  field
//! 0       4     payload length `len` (bytes)
//! 4       8     batch sequence number (monotonically increasing)
//! 12      4     CRC32 over the sequence-number bytes and the payload
//! 16      len   payload: the encoded batch (see `encode_batch`)
//! ```
//!
//! A record is *torn* when fewer than `16 + len` bytes remain, and *corrupt*
//! when its checksum or sequence order is wrong. Either way [`Wal::open`]
//! truncates the segment file at the record's start offset and deletes any
//! later segments — everything before the damage is intact by checksum,
//! everything after it is untrusted because record boundaries can no longer
//! be recovered.
//!
//! # Fsync policy
//!
//! The `IGPM_FSYNC` environment variable (validated as strictly as
//! `IGPM_SHARDS`: unknown values are hard errors, see [`configured_fsync`])
//! selects what a WAL append forces to stable storage:
//!
//! | value | meaning | survives |
//! |---|---|---|
//! | `always` (default) | `fdatasync` after every record | process crash *and* OS/power failure |
//! | `every_n=N` | `fdatasync` once per `N` records | process crash; up to `N-1` records on OS failure |
//! | `never` | never, the OS flushes when it pleases | process crash; unbounded loss on OS failure |
//!
//! A plain process crash loses nothing under any policy (the bytes are in the
//! page cache); the policy only decides how much acknowledged work an OS
//! crash or power cut may undo. Recovery handles every case identically —
//! whatever prefix of the log survived is replayed, and a torn final record
//! is truncated.
//!
//! # Failpoints
//!
//! Six [`crate::fail`] sites cover every durability boundary:
//! `wal.append-header` (before any record byte is written), `wal.append-body`
//! (between header and payload — the torn-record case), `wal.fsync`,
//! `ckpt.write`, `ckpt.rename` and `wal.prune`. The crash-recovery suite
//! (`tests/durability.rs`) kills the process model at each of them and
//! asserts reopening is bit-identical to the uninterrupted run.

use crate::crc32::{crc32, Crc32};
use crate::fail;
use crate::graph::DataGraph;
use crate::io::{graph_from_snapshot, graph_to_snapshot, IoError};
use crate::node::NodeId;
use crate::update::{BatchUpdate, Update};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// What a WAL append forces to stable storage. See the [module
/// docs](self#fsync-policy) for the full table; the environment knob is
/// `IGPM_FSYNC` ([`configured_fsync`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fdatasync` after every appended record (the default): an
    /// acknowledged batch survives OS and power failure.
    Always,
    /// `fdatasync` once every `n` appended records: bounds the loss window
    /// on OS failure to `n - 1` acknowledged batches.
    EveryN(u64),
    /// Never sync; the OS writes the page cache back on its own schedule.
    Never,
}

/// Parses a raw `IGPM_FSYNC` value. Unset or empty falls back to
/// [`FsyncPolicy::Always`]; anything set must be `always`, `never` or
/// `every_n=N` with `N ≥ 1` — garbage is a hard error, exactly like an
/// `IGPM_SHARDS` typo, because a silently ignored durability knob is a data
/// loss bug waiting for a power cut.
pub fn fsync_policy_from(raw: Option<&str>) -> Result<FsyncPolicy, String> {
    let Some(raw) = raw else { return Ok(FsyncPolicy::Always) };
    let trimmed = raw.trim();
    match trimmed {
        "" => Ok(FsyncPolicy::Always),
        "always" => Ok(FsyncPolicy::Always),
        "never" => Ok(FsyncPolicy::Never),
        _ => match trimmed.strip_prefix("every_n=") {
            Some(n) => match n.trim().parse::<u64>() {
                Ok(n) if n >= 1 => Ok(FsyncPolicy::EveryN(n)),
                _ => Err(format!("IGPM_FSYNC=every_n=N needs a positive integer N, got `{raw}`")),
            },
            None => {
                Err(format!("IGPM_FSYNC must be `always`, `never` or `every_n=N`, got `{raw}`"))
            }
        },
    }
}

/// The fsync policy durable indexes use when none is given explicitly:
/// `IGPM_FSYNC` if set, otherwise [`FsyncPolicy::Always`].
///
/// # Panics
/// Panics if `IGPM_FSYNC` is set to an unrecognised value — a misconfigured
/// durability knob must fail loudly, not silently default.
pub fn configured_fsync() -> FsyncPolicy {
    fsync_policy_from(std::env::var("IGPM_FSYNC").ok().as_deref())
        .unwrap_or_else(|message| panic!("{message}"))
}

// ---------------------------------------------------------------------------
// Batch payload encoding
// ---------------------------------------------------------------------------

/// Encodes a batch as the WAL record payload: a `u32` update count followed
/// by 9 bytes per update (tag byte — 0 insert, 1 delete — and the two
/// endpoint ids as `u32`s), all little-endian.
pub fn encode_batch(batch: &BatchUpdate) -> Vec<u8> {
    let mut buf = Vec::with_capacity(4 + batch.len() * 9);
    buf.extend_from_slice(&(batch.len() as u32).to_le_bytes());
    for update in batch {
        let (from, to) = update.endpoints();
        buf.push(if update.is_insert() { 0 } else { 1 });
        buf.extend_from_slice(&from.0.to_le_bytes());
        buf.extend_from_slice(&to.0.to_le_bytes());
    }
    buf
}

/// Decodes a WAL record payload produced by [`encode_batch`]. Returns a
/// descriptive error when the payload does not parse exactly — reachable
/// only through a checksum collision or a writer bug, so the WAL scan treats
/// it like any other corruption (truncate at the record).
pub fn decode_batch(bytes: &[u8]) -> Result<BatchUpdate, String> {
    if bytes.len() < 4 {
        return Err("payload shorter than its count field".into());
    }
    let count = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let body = &bytes[4..];
    if body.len() != count * 9 {
        return Err(format!("payload declares {count} updates but carries {} bytes", body.len()));
    }
    let mut updates = Vec::with_capacity(count);
    for chunk in body.chunks_exact(9) {
        let from = NodeId(u32::from_le_bytes(chunk[1..5].try_into().expect("4 bytes")));
        let to = NodeId(u32::from_le_bytes(chunk[5..9].try_into().expect("4 bytes")));
        updates.push(match chunk[0] {
            0 => Update::insert(from, to),
            1 => Update::delete(from, to),
            tag => return Err(format!("unknown update tag {tag}")),
        });
    }
    Ok(BatchUpdate::from_updates(updates))
}

// ---------------------------------------------------------------------------
// The write-ahead log
// ---------------------------------------------------------------------------

/// Bytes of a WAL record before the payload: length, sequence number,
/// checksum.
const RECORD_HEADER: usize = 16;

/// One recovered WAL record: the batch and the sequence number it was
/// appended under.
#[derive(Debug, Clone, PartialEq)]
pub struct WalRecord {
    /// The record's batch sequence number.
    pub seq: u64,
    /// The logged batch.
    pub batch: BatchUpdate,
}

/// How [`Wal::open`] repaired a damaged log, if it had to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalTruncation {
    /// The segment file that was truncated.
    pub path: PathBuf,
    /// The byte offset of the first bad record — the file's new length.
    pub offset: u64,
    /// What was wrong with the record (torn, checksum mismatch, …).
    pub reason: String,
    /// Later segment files deleted outright (their record boundaries can no
    /// longer be trusted once an earlier segment is damaged).
    pub dropped_segments: usize,
}

/// The result of scanning the log on [`Wal::open`]: every intact record in
/// sequence order, plus the repair report if the tail was damaged.
#[derive(Debug, Clone, PartialEq)]
pub struct WalScan {
    /// All intact records, ascending by sequence number.
    pub records: Vec<WalRecord>,
    /// `Some` iff the log was torn or corrupt and was truncated at the first
    /// bad record.
    pub truncated: Option<WalTruncation>,
}

/// An append-only, segmented write-ahead log of update batches living inside
/// one directory (shared with the checkpoints; WAL segments are the
/// `wal-<first-seq>.log` files).
///
/// The log orders records by a caller-supplied monotone sequence number. A
/// new segment is started by [`Wal::rotate`] (the recovery orchestrator does
/// so at every checkpoint) and segments superseded by a checkpoint are
/// removed by [`Wal::prune_segments_below`].
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    policy: FsyncPolicy,
    /// Sorted `(first sequence number, path)` of every live segment; the
    /// last entry is the active one.
    segments: Vec<(u64, PathBuf)>,
    /// The active segment, opened for appending. `None` until the first
    /// append or rotation when the log is empty.
    active: Option<File>,
    /// Appends since the last sync, for [`FsyncPolicy::EveryN`].
    unsynced: u64,
}

/// Formats the file name of the segment whose first record is `first_seq`.
fn segment_name(first_seq: u64) -> String {
    format!("wal-{first_seq:020}.log")
}

/// Parses a segment file name back to its first sequence number.
fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?.strip_suffix(".log")?.parse().ok()
}

/// `fsync` on the directory itself, making freshly created/renamed/removed
/// file *names* durable (file data syncs do not cover the directory entry).
fn sync_dir(dir: &Path) -> std::io::Result<()> {
    File::open(dir)?.sync_all()
}

impl Wal {
    /// Opens (creating the directory if needed) the log in `dir`, scanning
    /// every segment: intact records are returned in sequence order, and the
    /// log is physically repaired at the first torn or corrupt record (the
    /// damaged segment is truncated to just before it, later segments are
    /// deleted). The returned [`Wal`] appends to the last surviving segment.
    pub fn open(dir: impl Into<PathBuf>, policy: FsyncPolicy) -> std::io::Result<(Self, WalScan)> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(first) = entry.file_name().to_str().and_then(parse_segment_name) {
                segments.push((first, entry.path()));
            }
        }
        segments.sort_unstable_by_key(|&(first, _)| first);

        let mut records = Vec::new();
        let mut truncated = None;
        let mut last_seq = None;
        for index in 0..segments.len() {
            let path = segments[index].1.clone();
            match scan_segment(&path, last_seq, &mut records) {
                Ok(()) => last_seq = records.last().map(|r| r.seq),
                Err((offset, reason)) => {
                    // Repair: truncate this segment at the damage and drop
                    // everything after it — record boundaries downstream of a
                    // bad length field cannot be trusted.
                    OpenOptions::new().write(true).open(&path)?.set_len(offset)?;
                    let dropped = segments.split_off(index + 1);
                    for (_, dead) in &dropped {
                        fs::remove_file(dead)?;
                    }
                    if !dropped.is_empty() {
                        sync_dir(&dir)?;
                    }
                    truncated = Some(WalTruncation {
                        path,
                        offset,
                        reason,
                        dropped_segments: dropped.len(),
                    });
                    break;
                }
            }
        }

        let active = match segments.last() {
            Some((_, path)) => Some(OpenOptions::new().append(true).open(path)?),
            None => None,
        };
        let wal = Wal { dir, policy, segments, active, unsynced: 0 };
        Ok((wal, WalScan { records, truncated }))
    }

    /// The fsync policy this log was opened with.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// Appends one record. `seq` must be strictly greater than every
    /// sequence number already in the log — the recovery orchestrator hands
    /// out consecutive numbers. Syncs according to the fsync policy.
    ///
    /// The write is *not* atomic (no single `write` syscall is, across a
    /// crash): a crash between header and payload leaves a torn record that
    /// the next [`Wal::open`] truncates away. That is the designed behaviour
    /// — an unacknowledged append may be lost, never half-applied.
    pub fn append(&mut self, seq: u64, batch: &BatchUpdate) -> std::io::Result<()> {
        if self.active.is_none() {
            self.rotate(seq)?;
        }
        let payload = encode_batch(batch);
        let mut header = [0u8; RECORD_HEADER];
        header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
        header[4..12].copy_from_slice(&seq.to_le_bytes());
        let mut crc = Crc32::new();
        crc.update(&header[4..12]);
        crc.update(&payload);
        header[12..16].copy_from_slice(&crc.finalize().to_le_bytes());

        let file = self.active.as_mut().expect("active segment ensured above");
        fail::fire(fail::WAL_APPEND_HEADER);
        file.write_all(&header)?;
        fail::fire(fail::WAL_APPEND_BODY);
        file.write_all(&payload)?;
        self.unsynced += 1;
        match self.policy {
            FsyncPolicy::Always => self.sync()?,
            FsyncPolicy::EveryN(n) if self.unsynced >= n => self.sync()?,
            _ => {}
        }
        Ok(())
    }

    /// Forces every appended record to stable storage (`fdatasync`),
    /// regardless of policy. A no-op when nothing is unsynced.
    pub fn sync(&mut self) -> std::io::Result<()> {
        if self.unsynced == 0 {
            return Ok(());
        }
        if let Some(file) = &self.active {
            fail::fire(fail::WAL_FSYNC);
            file.sync_data()?;
        }
        self.unsynced = 0;
        Ok(())
    }

    /// Starts a fresh segment whose first record will carry `first_seq`. The
    /// previous segment stays on disk until pruned. Called by the recovery
    /// orchestrator right after a checkpoint, so each segment corresponds to
    /// one checkpoint interval.
    pub fn rotate(&mut self, first_seq: u64) -> std::io::Result<()> {
        self.sync()?;
        let path = self.dir.join(segment_name(first_seq));
        let file = OpenOptions::new().create_new(true).append(true).open(&path)?;
        sync_dir(&self.dir)?;
        self.segments.push((first_seq, path));
        self.active = Some(file);
        Ok(())
    }

    /// Deletes every segment all of whose records have sequence numbers
    /// `≤ seq` — everything a checkpoint at `seq` (or older, still-retained
    /// checkpoints) no longer needs. The active segment is never deleted.
    /// Returns the number of segments removed.
    pub fn prune_segments_below(&mut self, seq: u64) -> std::io::Result<usize> {
        // A segment's records all precede the *next* segment's first
        // sequence number, so it is prunable iff that bound is ≤ seq + 1.
        let mut prunable = 0;
        while prunable + 1 < self.segments.len() && self.segments[prunable + 1].0 <= seq + 1 {
            prunable += 1;
        }
        if prunable == 0 {
            return Ok(0);
        }
        fail::fire(fail::WAL_PRUNE);
        for (_, path) in self.segments.drain(..prunable) {
            fs::remove_file(path)?;
        }
        sync_dir(&self.dir)?;
        Ok(prunable)
    }

    /// The live segment files, ascending by first sequence number (the last
    /// one is the active segment).
    pub fn segment_paths(&self) -> Vec<PathBuf> {
        self.segments.iter().map(|(_, path)| path.clone()).collect()
    }
}

/// Scans one segment file, appending intact records to `records`. `Ok` means
/// the whole file parsed; `Err((offset, reason))` reports the first bad
/// record for the caller to truncate at. Sequence numbers must strictly
/// increase, continuing from `last_seq`.
fn scan_segment(
    path: &Path,
    mut last_seq: Option<u64>,
    records: &mut Vec<WalRecord>,
) -> Result<(), (u64, String)> {
    let mut bytes = Vec::new();
    // An unreadable segment is indistinguishable from a fully torn one:
    // truncating it to zero keeps recovery going with what earlier segments
    // provided.
    if let Err(e) = File::open(path).and_then(|mut f| f.read_to_end(&mut bytes)) {
        return Err((0, format!("unreadable segment: {e}")));
    }
    let mut pos = 0usize;
    while pos < bytes.len() {
        let offset = pos as u64;
        let remaining = bytes.len() - pos;
        if remaining < RECORD_HEADER {
            return Err((offset, format!("torn record header ({remaining} bytes)")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        let seq = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
        let stored = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4 bytes"));
        if remaining - RECORD_HEADER < len {
            return Err((
                offset,
                format!("torn record body ({} of {len} bytes)", remaining - RECORD_HEADER),
            ));
        }
        let payload = &bytes[pos + RECORD_HEADER..pos + RECORD_HEADER + len];
        let mut crc = Crc32::new();
        crc.update(&bytes[pos + 4..pos + 12]);
        crc.update(payload);
        let computed = crc.finalize();
        if stored != computed {
            return Err((
                offset,
                format!("checksum mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"),
            ));
        }
        if last_seq.is_some_and(|last| seq <= last) {
            return Err((
                offset,
                format!("non-monotone sequence number {seq} after {}", last_seq.unwrap_or(0)),
            ));
        }
        let batch = match decode_batch(payload) {
            Ok(batch) => batch,
            Err(reason) => return Err((offset, format!("undecodable payload: {reason}"))),
        };
        records.push(WalRecord { seq, batch });
        last_seq = Some(seq);
        pos += RECORD_HEADER + len;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Checkpoints
// ---------------------------------------------------------------------------

/// Magic tag of checkpoint files.
const CKPT_MAGIC: u32 = 0x4947_434b; // "IGCK"
/// Checkpoint format version.
const CKPT_VERSION: u32 = 1;

/// A loaded checkpoint: the graph and the WAL sequence number it covers
/// (every WAL record with a *higher* number must be replayed on top).
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// The last batch sequence number whose effects the snapshot includes.
    pub seq: u64,
    /// The captured graph.
    pub graph: DataGraph,
}

/// Formats the file name of the checkpoint covering `seq`.
fn checkpoint_name(seq: u64) -> String {
    format!("ckpt-{seq:020}.bin")
}

/// Parses a checkpoint file name back to its sequence number.
fn parse_checkpoint_name(name: &str) -> Option<u64> {
    name.strip_prefix("ckpt-")?.strip_suffix(".bin")?.parse().ok()
}

/// Writes a checkpoint of `graph` covering `seq` into `dir`, atomically:
/// the bytes go to a `.tmp` file first, are fsynced, and only then renamed
/// to the final `ckpt-<seq>.bin` name (followed by a directory fsync). A
/// crash at any instruction therefore leaves either no checkpoint (at most a
/// stray `.tmp` that [`sweep_temp_files`] removes) or a complete one — never
/// a half-written file under the live name.
pub fn write_checkpoint(dir: &Path, seq: u64, graph: &DataGraph) -> Result<PathBuf, IoError> {
    let snapshot = graph_to_snapshot(graph)?;
    let mut buf = Vec::with_capacity(28 + snapshot.len());
    buf.extend_from_slice(&CKPT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&CKPT_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&(snapshot.len() as u64).to_le_bytes());
    buf.extend_from_slice(&snapshot);
    let checksum = crc32(&buf);
    buf.extend_from_slice(&checksum.to_le_bytes());

    let tmp = dir.join(format!("ckpt-{seq:020}.tmp"));
    let path = dir.join(checkpoint_name(seq));
    fail::fire(fail::CKPT_WRITE);
    {
        let mut file = File::create(&tmp)?;
        file.write_all(&buf)?;
        file.sync_all()?;
    }
    fail::fire(fail::CKPT_RENAME);
    fs::rename(&tmp, &path)?;
    sync_dir(dir)?;
    Ok(path)
}

/// Reads and fully verifies one checkpoint file.
pub fn read_checkpoint(path: &Path) -> Result<Checkpoint, IoError> {
    let bytes = fs::read(path)?;
    if bytes.len() < 28 {
        return Err(IoError::Corrupt("checkpoint too short".into()));
    }
    let (body, stored) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(stored.try_into().expect("4 bytes"));
    let computed = crc32(body);
    if stored != computed {
        return Err(IoError::Corrupt(format!(
            "checkpoint checksum mismatch (stored 0x{stored:08x}, computed 0x{computed:08x})"
        )));
    }
    let magic = u32::from_le_bytes(body[..4].try_into().expect("4 bytes"));
    if magic != CKPT_MAGIC {
        return Err(IoError::Corrupt(format!("bad checkpoint magic 0x{magic:08x}")));
    }
    let version = u32::from_le_bytes(body[4..8].try_into().expect("4 bytes"));
    if version != CKPT_VERSION {
        return Err(IoError::Corrupt(format!("unsupported checkpoint version {version}")));
    }
    let seq = u64::from_le_bytes(body[8..16].try_into().expect("8 bytes"));
    let snapshot_len = u64::from_le_bytes(body[16..24].try_into().expect("8 bytes")) as usize;
    if body.len() - 24 != snapshot_len {
        return Err(IoError::Corrupt(format!(
            "checkpoint declares a {snapshot_len}-byte snapshot but carries {}",
            body.len() - 24
        )));
    }
    let graph = graph_from_snapshot(&body[24..])?;
    Ok(Checkpoint { seq, graph })
}

/// The result of [`load_latest_checkpoint`]: the newest checkpoint that
/// verified, plus the files that did not (newest first) — kept for
/// diagnostics, already skipped over.
#[derive(Debug)]
pub struct CheckpointLoad {
    /// The newest verifiable checkpoint.
    pub checkpoint: Checkpoint,
    /// Newer checkpoint files that failed verification and were skipped.
    pub skipped: Vec<(PathBuf, IoError)>,
}

/// Every checkpoint file in `dir`, ascending by covered sequence number.
pub fn list_checkpoints(dir: &Path) -> std::io::Result<Vec<(u64, PathBuf)>> {
    let mut found = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_checkpoint_name) {
            found.push((seq, entry.path()));
        }
    }
    found.sort_unstable_by_key(|&(seq, _)| seq);
    Ok(found)
}

/// Loads the newest checkpoint in `dir` that passes verification, falling
/// back to older ones when the newest is corrupt (a crash can never corrupt
/// a *renamed* checkpoint, but bit-rot can). Returns `None` when the
/// directory holds no checkpoint at all; `Some` with the skipped files
/// otherwise. Corruption of every present checkpoint is an error distinct
/// from the empty case, so callers never silently restart from scratch.
pub fn load_latest_checkpoint(dir: &Path) -> Result<Option<CheckpointLoad>, IoError> {
    let found = list_checkpoints(dir)?;
    if found.is_empty() {
        return Ok(None);
    }
    let mut skipped = Vec::new();
    for (_, path) in found.iter().rev() {
        match read_checkpoint(path) {
            Ok(checkpoint) => return Ok(Some(CheckpointLoad { checkpoint, skipped })),
            Err(error) => skipped.push((path.clone(), error)),
        }
    }
    let reasons = skipped
        .iter()
        .map(|(path, error)| format!("{}: {error}", path.display()))
        .collect::<Vec<_>>()
        .join("; ");
    Err(IoError::Corrupt(format!("every checkpoint failed verification: {reasons}")))
}

/// Deletes all but the newest `keep` checkpoints. Returns the sequence
/// number of the oldest *retained* checkpoint (callers prune WAL segments
/// below it, so older retained checkpoints stay replayable), or `None` when
/// nothing is retained because the directory holds no checkpoints.
pub fn prune_checkpoints(dir: &Path, keep: usize) -> std::io::Result<Option<u64>> {
    let found = list_checkpoints(dir)?;
    let keep = keep.max(1);
    if found.len() > keep {
        fail::fire(fail::WAL_PRUNE);
        for (_, path) in &found[..found.len() - keep] {
            fs::remove_file(path)?;
        }
        sync_dir(dir)?;
    }
    Ok(found.iter().rev().take(keep).next_back().map(|&(seq, _)| seq))
}

/// Removes stray `*.tmp` files — the residue of a crash between a
/// checkpoint's temp-write and its rename. Called on every open, before any
/// checkpoint is read.
pub fn sweep_temp_files(dir: &Path) -> std::io::Result<usize> {
    let mut swept = 0;
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        if entry.file_name().to_str().is_some_and(|name| name.ends_with(".tmp")) {
            fs::remove_file(entry.path())?;
            swept += 1;
        }
    }
    Ok(swept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attributes;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static COUNTER: AtomicUsize = AtomicUsize::new(0);
        let unique = COUNTER.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("igpm-wal-{tag}-{}-{unique}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(ops: &[(u32, u32, bool)]) -> BatchUpdate {
        let mut batch = BatchUpdate::new();
        for &(from, to, insert) in ops {
            if insert {
                batch.insert(NodeId(from), NodeId(to));
            } else {
                batch.delete(NodeId(from), NodeId(to));
            }
        }
        batch
    }

    #[test]
    fn fsync_policy_parsing_is_strict() {
        assert_eq!(fsync_policy_from(None), Ok(FsyncPolicy::Always));
        assert_eq!(fsync_policy_from(Some("")), Ok(FsyncPolicy::Always));
        assert_eq!(fsync_policy_from(Some("always")), Ok(FsyncPolicy::Always));
        assert_eq!(fsync_policy_from(Some(" never ")), Ok(FsyncPolicy::Never));
        assert_eq!(fsync_policy_from(Some("every_n=8")), Ok(FsyncPolicy::EveryN(8)));
        for bad in ["sometimes", "every_n=0", "every_n=", "every_n=-1", "ALWAYS", "8"] {
            let err =
                fsync_policy_from(Some(bad)).expect_err(&format!("`{bad}` must be a hard error"));
            assert!(err.contains(bad), "error must echo the offending value: {err}");
        }
    }

    #[test]
    fn batch_payload_round_trip() {
        let original = batch(&[(0, 1, true), (7, 3, false), (u32::MAX, 0, true)]);
        let encoded = encode_batch(&original);
        assert_eq!(decode_batch(&encoded).unwrap(), original);
        assert_eq!(decode_batch(&encode_batch(&BatchUpdate::new())).unwrap(), BatchUpdate::new());
        // Malformed payloads are descriptive errors, not panics.
        assert!(decode_batch(&[]).is_err());
        assert!(decode_batch(&encoded[..encoded.len() - 1]).is_err());
        let mut bad_tag = encoded.clone();
        bad_tag[4] = 9;
        assert!(decode_batch(&bad_tag).unwrap_err().contains("tag"));
    }

    #[test]
    fn append_reopen_round_trip_across_segments() {
        let dir = temp_dir("roundtrip");
        let batches: Vec<BatchUpdate> =
            (0..10u32).map(|i| batch(&[(i, i + 1, i % 2 == 0), (i + 2, i, true)])).collect();
        {
            let (mut wal, scan) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
            assert!(scan.records.is_empty() && scan.truncated.is_none());
            for (i, b) in batches.iter().enumerate() {
                wal.append(i as u64 + 1, b).unwrap();
                if i == 4 {
                    wal.rotate(i as u64 + 2).unwrap(); // mid-stream segment boundary
                }
            }
        }
        let (wal, scan) = Wal::open(&dir, FsyncPolicy::Never).unwrap();
        assert!(scan.truncated.is_none());
        assert_eq!(scan.records.len(), batches.len());
        for (i, record) in scan.records.iter().enumerate() {
            assert_eq!(record.seq, i as u64 + 1);
            assert_eq!(&record.batch, &batches[i]);
        }
        assert_eq!(wal.segment_paths().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_and_corrupt_tails_truncate_cleanly() {
        // Each damage shape: (description, surviving seqs, mutilate(bytes)).
        type Mutilate = fn(Vec<u8>) -> Vec<u8>;
        let cases: &[(&str, &[u64], Mutilate)] = &[
            ("mid-header cut", &[1, 2], |b| {
                let keep = b.len() - 30;
                b[..keep].to_vec()
            }),
            ("mid-body cut", &[1, 2], |b| {
                let keep = b.len() - 3;
                b[..keep].to_vec()
            }),
            ("payload bit-rot", &[1, 2], |mut b| {
                let n = b.len();
                b[n - 2] ^= 0x40;
                b
            }),
            // Trailing garbage only costs the garbage itself — every intact
            // record before it survives.
            ("garbage appended", &[1, 2, 3], |mut b| {
                b.extend_from_slice(b"\xde\xad\xbe\xef");
                b
            }),
        ];
        for (what, expected, mutilate) in cases {
            let dir = temp_dir("torn");
            let good = batch(&[(1, 2, true)]);
            let tail = batch(&[(3, 4, true), (4, 5, false)]);
            {
                let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
                wal.append(1, &good).unwrap();
                wal.append(2, &good).unwrap();
                wal.append(3, &tail).unwrap();
            }
            let segment = fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
            let bytes = fs::read(&segment).unwrap();
            fs::write(&segment, mutilate(bytes.clone())).unwrap();

            let (_, scan) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
            let truncation = scan.truncated.unwrap_or_else(|| panic!("{what}: no repair"));
            let survivors: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
            assert_eq!(&survivors, expected, "{what}: wrong survivors");
            // The repair is physical: a second open sees a clean log.
            assert_eq!(fs::read(&segment).unwrap().len() as u64, truncation.offset, "{what}");
            let (_, rescan) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
            assert!(rescan.truncated.is_none(), "{what}: repair did not stick");
            assert_eq!(rescan.records.len(), expected.len(), "{what}");
            let _ = fs::remove_dir_all(&dir);
        }
    }

    #[test]
    fn damage_in_an_earlier_segment_drops_later_segments() {
        let dir = temp_dir("cascade");
        {
            let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
            wal.append(1, &batch(&[(0, 1, true)])).unwrap();
            wal.rotate(2).unwrap();
            wal.append(2, &batch(&[(1, 2, true)])).unwrap();
        }
        let first = dir.join(segment_name(1));
        let mut bytes = fs::read(&first).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        fs::write(&first, bytes).unwrap();

        let (wal, scan) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        let truncation = scan.truncated.expect("damage must be repaired");
        assert_eq!(truncation.dropped_segments, 1, "later segment must be dropped");
        assert!(scan.records.is_empty());
        assert_eq!(wal.segment_paths().len(), 1);
        assert!(!dir.join(segment_name(2)).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_and_pruning_respect_retained_checkpoints() {
        let dir = temp_dir("prune");
        let (mut wal, _) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        for seq in 1..=6u64 {
            wal.append(seq, &batch(&[(seq as u32, 0, true)])).unwrap();
            if seq.is_multiple_of(2) {
                wal.rotate(seq + 1).unwrap(); // checkpoint at seq = 2, 4, 6
            }
        }
        assert_eq!(wal.segment_paths().len(), 4);
        // Oldest retained checkpoint covers seq 4: segments ending ≤ 4 go.
        assert_eq!(wal.prune_segments_below(4).unwrap(), 2);
        let (_, scan) = Wal::open(&dir, FsyncPolicy::Always).unwrap();
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![5, 6], "records above the pruned bound survive");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_round_trip_fallback_and_pruning() {
        let dir = temp_dir("ckpt");
        let mut graph = DataGraph::new();
        let a = graph.add_node(Attributes::labeled("a"));
        let b = graph.add_node(Attributes::labeled("b"));
        graph.add_edge(a, b);
        let mut bigger = graph.clone();
        bigger.add_edge(b, a);

        write_checkpoint(&dir, 3, &graph).unwrap();
        write_checkpoint(&dir, 7, &bigger).unwrap();
        let load = load_latest_checkpoint(&dir).unwrap().expect("checkpoints exist");
        assert_eq!(load.checkpoint.seq, 7);
        assert!(load.checkpoint.graph.identical_to(&bigger));
        assert!(load.skipped.is_empty());

        // Corrupt the newest: loading falls back to the older one.
        let newest = dir.join(checkpoint_name(7));
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        fs::write(&newest, bytes).unwrap();
        let load = load_latest_checkpoint(&dir).unwrap().expect("older checkpoint remains");
        assert_eq!(load.checkpoint.seq, 3);
        assert!(load.checkpoint.graph.identical_to(&graph));
        assert_eq!(load.skipped.len(), 1);

        // Corrupting every checkpoint is an error, not a silent restart.
        let older = dir.join(checkpoint_name(3));
        let mut bytes = fs::read(&older).unwrap();
        bytes[10] ^= 0x01;
        fs::write(&older, bytes).unwrap();
        assert!(matches!(load_latest_checkpoint(&dir), Err(IoError::Corrupt(_))));

        // An empty directory is the distinct None case.
        let empty = temp_dir("ckpt-empty");
        assert!(load_latest_checkpoint(&empty).unwrap().is_none());

        // Pruning keeps the newest `keep` and reports the retention bound.
        let dir2 = temp_dir("ckpt-prune");
        for seq in [1u64, 5, 9] {
            write_checkpoint(&dir2, seq, &graph).unwrap();
        }
        assert_eq!(prune_checkpoints(&dir2, 2).unwrap(), Some(5));
        let kept: Vec<u64> = list_checkpoints(&dir2).unwrap().into_iter().map(|(s, _)| s).collect();
        assert_eq!(kept, vec![5, 9]);

        for d in [&dir, &empty, &dir2] {
            let _ = fs::remove_dir_all(d);
        }
    }

    #[test]
    fn temp_file_residue_is_swept() {
        let dir = temp_dir("sweep");
        fs::write(dir.join("ckpt-00000000000000000009.tmp"), b"half-written").unwrap();
        fs::write(dir.join("keep.bin"), b"unrelated").unwrap();
        assert_eq!(sweep_temp_files(&dir).unwrap(), 1);
        assert!(dir.join("keep.bin").exists());
        assert_eq!(sweep_temp_files(&dir).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }
}
