//! Deterministic failpoints for crash-consistency testing.
//!
//! A *failpoint* is a named site in the batch-application pipeline that can be
//! armed to panic when execution reaches it. The incremental engines
//! (`igpm-core`) place one at every pipeline stage boundary — reduction, graph
//! mutation, counter absorption, the demotion/promotion drains — and the graph
//! mutation primitives place three more ([`GRAPH_ADD_EDGE`],
//! [`GRAPH_REMOVE_EDGE`], [`GRAPH_APPLY_SIDES`]) *inside* the mutation, so a
//! fault-injection suite can interrupt a batch mid-flight at a precisely
//! chosen point and assert that the engines' transactional contract holds:
//! the panic either **rolls back** (graph and auxiliary state bit-identical to
//! the pre-batch state) or **poisons** the index (every read errors until
//! `recover()` rebuilds from the graph). The durability layer
//! ([`crate::wal`]) places six more at every on-disk boundary — the two
//! halves of a WAL record append, the fsync, the checkpoint temp-write and
//! rename, and the segment/checkpoint pruning — so the crash-recovery suite
//! can kill the process model at any instruction of the persistence path and
//! assert reopening yields bit-identical state. See `RECOVERY.md` at the
//! repository root for the full contract.
//!
//! # Arming sites
//!
//! * **Environment**: `IGPM_FAILPOINTS=sim.absorb,graph.apply-sides` arms a
//!   comma-separated list of sites for the whole process (parsed once, on the
//!   first [`fire`]; unknown names are hard errors, like `IGPM_SHARDS`
//!   typos).
//! * **Programmatically**: [`arm`] / [`disarm`] / [`disarm_all`], or the
//!   RAII [`arm_scoped`] guard the fault-injection suite uses so a panicking
//!   test cannot leave a site armed for the next one. [`arm_once`] arms a
//!   site that *disarms itself* on its first firing — the service-layer
//!   suite uses it to panic exactly one engine of a multi-pattern fan-out
//!   (the first index to reach the stage trips it; every later index runs
//!   clean).
//!
//! # Cost when disarmed
//!
//! [`fire`] compiles to two atomic loads (one `OnceLock` initialisation
//! check, one relaxed flag read) and a never-taken branch. No lock is touched
//! and no allocation happens unless at least one site is armed anywhere in
//! the process — the hooks are free on the hot path, which the benchmark
//! regression gate runs with failpoints compiled in but disarmed.
//!
//! The registry is process-global: arming a site affects every thread,
//! including the scoped worker threads the sharded engines spawn — which is
//! the point, since shard workers are exactly where mid-flight panics are
//! hardest to contain. Tests that arm failpoints must therefore serialise
//! with each other (the fault-injection suite runs under a single lock).

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};

/// Failpoint inside [`crate::DataGraph::add_edge`], after the bounds checks
/// and before any mutation. Fires on every edge insertion, including the
/// per-update mutation loops of the engines' sequential batch paths and the
/// `IncLM` distance maintenance.
pub const GRAPH_ADD_EDGE: &str = "graph.add-edge";
/// Failpoint inside [`crate::DataGraph::remove_edge`], before any mutation.
pub const GRAPH_REMOVE_EDGE: &str = "graph.remove-edge";
/// Failpoint in the middle of
/// [`crate::DataGraph::apply_reduced_batch_sharded`]: between the out-side
/// and in-side passes when the mutation fans out to threads (the graph then
/// has forward adjacency mutated but reverse adjacency untouched — the
/// nastiest partial state the rollback must repair), or halfway through the
/// update list on the sequential path.
pub const GRAPH_APPLY_SIDES: &str = "graph.apply-sides";
/// Failpoint at the head of [`crate::ShardPlan::new`] — the earliest point of
/// every sharded operation, before any state is touched.
pub const SHARD_PLAN: &str = "shard.plan";
/// Simulation engine, start of the `minDelta` reduction stage.
pub const SIM_REDUCE: &str = "sim.reduce";
/// Simulation engine, start of the graph-mutation stage (after reduction,
/// before any edge is touched).
pub const SIM_MUTATE: &str = "sim.mutate";
/// Simulation engine, start of the counter-absorption stage (graph fully
/// mutated, auxiliary state still pre-batch).
pub const SIM_ABSORB: &str = "sim.absorb";
/// Simulation engine, start of the demotion drain.
pub const SIM_DEMOTE: &str = "sim.demote";
/// Simulation engine, start of the promotion drain (`propCS`/`propCC`).
pub const SIM_PROMOTE: &str = "sim.promote";
/// Bounded engine, start of the batch reduction stage.
pub const BSIM_REDUCE: &str = "bsim.reduce";
/// Bounded engine, start of the `IncLM` landmark/graph maintenance stage.
pub const BSIM_LANDMARK: &str = "bsim.landmark";
/// Bounded engine, start of the pair re-evaluation stage.
pub const BSIM_REFRESH: &str = "bsim.refresh";
/// Bounded engine, start of the demotion drain.
pub const BSIM_DEMOTE: &str = "bsim.demote";
/// Bounded engine, start of the promotion drain.
pub const BSIM_PROMOTE: &str = "bsim.promote";
/// Durability layer: inside [`crate::wal::Wal::append`], after the record is
/// encoded and before any byte reaches the file — a crash here loses the
/// record entirely but leaves the log clean.
pub const WAL_APPEND_HEADER: &str = "wal.append-header";
/// Durability layer: inside [`crate::wal::Wal::append`], between the record
/// header and the record body — a crash here leaves a *torn* record (a
/// header announcing bytes that never arrived) that recovery must truncate.
pub const WAL_APPEND_BODY: &str = "wal.append-body";
/// Durability layer: inside [`crate::wal::Wal::sync`], before the `fsync`
/// syscall — a crash here has the record bytes written but not yet forced to
/// stable storage.
pub const WAL_FSYNC: &str = "wal.fsync";
/// Durability layer: inside [`crate::wal::write_checkpoint`], before the
/// temporary checkpoint file is written — a crash here leaves at most a
/// stray `*.tmp` file that recovery sweeps away.
pub const CKPT_WRITE: &str = "ckpt.write";
/// Durability layer: inside [`crate::wal::write_checkpoint`], after the
/// temporary file is written and fsynced but before the atomic rename — the
/// checkpoint is complete on disk yet invisible, so recovery must still use
/// the previous checkpoint plus the full WAL tail.
pub const CKPT_RENAME: &str = "ckpt.rename";
/// Durability layer: inside [`crate::wal::Wal::prune_segments_below`] (and
/// the checkpoint pruning that shares the site), before any file is deleted
/// — a crash here leaves superseded segments/checkpoints behind, which
/// recovery must skip, never replay twice.
pub const WAL_PRUNE: &str = "wal.prune";

/// Every registered failpoint site. The fault-injection suite iterates this
/// list; [`arm`] and `IGPM_FAILPOINTS` reject names outside it.
pub const SITES: &[&str] = &[
    GRAPH_ADD_EDGE,
    GRAPH_REMOVE_EDGE,
    GRAPH_APPLY_SIDES,
    SHARD_PLAN,
    SIM_REDUCE,
    SIM_MUTATE,
    SIM_ABSORB,
    SIM_DEMOTE,
    SIM_PROMOTE,
    BSIM_REDUCE,
    BSIM_LANDMARK,
    BSIM_REFRESH,
    BSIM_DEMOTE,
    BSIM_PROMOTE,
    WAL_APPEND_HEADER,
    WAL_APPEND_BODY,
    WAL_FSYNC,
    CKPT_WRITE,
    CKPT_RENAME,
    WAL_PRUNE,
];

/// Fast-path flag: true iff at least one site is armed anywhere in the
/// process. [`fire`] reads this and nothing else when everything is disarmed.
static ANY_ARMED: AtomicBool = AtomicBool::new(false);

/// The armed-site sets: `persistent` sites panic on every firing until
/// disarmed; `once` sites remove themselves as they panic (see [`arm_once`]).
#[derive(Default)]
struct ArmedSites {
    persistent: HashSet<&'static str>,
    once: HashSet<&'static str>,
}

impl ArmedSites {
    fn is_empty(&self) -> bool {
        self.persistent.is_empty() && self.once.is_empty()
    }
}

/// The armed-site set. Guarded by a mutex because arming happens on the test
/// control path only; the hot path never locks it (see [`ANY_ARMED`]).
/// Poisoning is deliberately ignored — a failpoint's whole job is to panic
/// near this lock, and an armed set is plain data that cannot be left
/// half-updated.
fn registry() -> &'static Mutex<ArmedSites> {
    static REGISTRY: OnceLock<Mutex<ArmedSites>> = OnceLock::new();
    REGISTRY.get_or_init(|| {
        let mut armed = ArmedSites::default();
        if let Ok(spec) = std::env::var("IGPM_FAILPOINTS") {
            for name in spec.split(',').map(str::trim).filter(|n| !n.is_empty()) {
                armed.persistent.insert(resolve(name));
            }
        }
        if !armed.is_empty() {
            ANY_ARMED.store(true, Ordering::SeqCst);
        }
        Mutex::new(armed)
    })
}

/// Maps a site name to its canonical `'static` string, panicking on unknown
/// names — a typo in `IGPM_FAILPOINTS` or a test must fail loudly, exactly
/// like an `IGPM_SHARDS` typo.
fn resolve(name: &str) -> &'static str {
    SITES
        .iter()
        .copied()
        .find(|&s| s == name)
        .unwrap_or_else(|| panic!("unknown failpoint `{name}`; known sites: {SITES:?}"))
}

/// Seeds the registry from `IGPM_FAILPOINTS` exactly once per process, so
/// env-armed sites are visible to the very first [`fire`].
#[inline]
fn ensure_seeded() {
    static SEEDED: OnceLock<()> = OnceLock::new();
    SEEDED.get_or_init(|| {
        let _ = registry();
    });
}

/// A failpoint site: panics with a recognisable message iff `site` is armed.
///
/// Disarmed cost is two atomic loads and a never-taken branch — cheap enough
/// to sit inside `DataGraph::add_edge`. Call with one of the `pub const`
/// site names of this module; firing an unregistered name is a no-op (it can
/// never be armed).
#[inline]
pub fn fire(site: &str) {
    ensure_seeded();
    if ANY_ARMED.load(Ordering::Relaxed) {
        fire_armed(site);
    }
}

/// Slow path of [`fire`]: consults the registry. The lock guard is dropped
/// *before* panicking so the mutex is never poisoned by the injected panic.
#[cold]
fn fire_armed(site: &str) {
    let armed = {
        let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
        if guard.persistent.contains(site) {
            true
        } else if guard.once.remove(site) {
            // A once-site consumes itself as it fires, so by the time the
            // panic is observable the site is already disarmed.
            if guard.is_empty() {
                ANY_ARMED.store(false, Ordering::SeqCst);
            }
            true
        } else {
            false
        }
    };
    if armed {
        panic!("failpoint `{site}` triggered");
    }
}

/// Arms `site`: the next [`fire`] on it (from any thread) panics. Unknown
/// names are rejected with a panic.
pub fn arm(site: &str) {
    let site = resolve(site);
    ensure_seeded();
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    guard.persistent.insert(site);
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Arms `site` for exactly one firing: the next [`fire`] on it panics *and
/// disarms the site* in the same step, so every subsequent firing — from the
/// same thread or any other — runs clean. This is how the service-layer
/// tests poison a single pattern out of a registered fleet: the first engine
/// whose pipeline reaches the armed stage trips the panic, and the remaining
/// engines of the same `apply` pass through untouched. A once-armed site
/// that never fires stays armed; pair with [`disarm_all`] (or check
/// [`armed`]) in test cleanup. Unknown names are rejected with a panic.
pub fn arm_once(site: &str) {
    let site = resolve(site);
    ensure_seeded();
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    guard.once.insert(site);
    ANY_ARMED.store(true, Ordering::SeqCst);
}

/// Disarms `site` (a no-op if it was not armed), whether it was armed
/// persistently or via [`arm_once`].
pub fn disarm(site: &str) {
    ensure_seeded();
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    guard.persistent.remove(site);
    guard.once.remove(site);
    if guard.is_empty() {
        ANY_ARMED.store(false, Ordering::SeqCst);
    }
}

/// Disarms every site.
pub fn disarm_all() {
    ensure_seeded();
    let mut guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    guard.persistent.clear();
    guard.once.clear();
    ANY_ARMED.store(false, Ordering::SeqCst);
}

/// True iff `site` is currently armed (persistently or for one firing).
pub fn armed(site: &str) -> bool {
    ensure_seeded();
    let guard = registry().lock().unwrap_or_else(PoisonError::into_inner);
    guard.persistent.contains(site) || guard.once.contains(site)
}

/// RAII guard returned by [`arm_scoped`]: disarms its site on drop, including
/// during the unwind of the very panic the site injected.
#[derive(Debug)]
pub struct ScopedFailpoint {
    site: &'static str,
}

impl Drop for ScopedFailpoint {
    fn drop(&mut self) {
        disarm(self.site);
    }
}

/// Arms `site` and returns a guard that disarms it when dropped. The
/// fault-injection suite uses this so an assertion failure between arm and
/// disarm cannot leak an armed site into the next test.
pub fn arm_scoped(site: &str) -> ScopedFailpoint {
    let site = resolve(site);
    arm(site);
    ScopedFailpoint { site }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The registry is process-global, so these tests serialise on a lock of
    // their own (the standard library runs #[test] fns concurrently).
    static SERIAL: Mutex<()> = Mutex::new(());

    #[test]
    fn disarmed_sites_are_free_and_silent() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        disarm_all();
        for site in SITES {
            fire(site); // must not panic
        }
    }

    #[test]
    fn armed_site_panics_and_scoped_guard_disarms() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        disarm_all();
        {
            let _guard = arm_scoped(SIM_ABSORB);
            assert!(armed(SIM_ABSORB));
            let err = std::panic::catch_unwind(|| fire(SIM_ABSORB))
                .expect_err("armed failpoint must panic");
            let message = err
                .downcast_ref::<String>()
                .cloned()
                .expect("failpoint panics carry a String payload");
            assert!(message.contains(SIM_ABSORB), "unhelpful payload: {message}");
            // Other sites stay silent.
            fire(SIM_REDUCE);
        }
        assert!(!armed(SIM_ABSORB), "scoped guard must disarm on drop");
        fire(SIM_ABSORB);
    }

    #[test]
    fn arm_once_fires_exactly_once() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        disarm_all();
        arm_once(BSIM_REFRESH);
        assert!(armed(BSIM_REFRESH));
        assert!(std::panic::catch_unwind(|| fire(BSIM_REFRESH)).is_err());
        // Consumed by the firing: the site is disarmed before the panic is
        // observable, so a second firing runs clean.
        assert!(!armed(BSIM_REFRESH));
        fire(BSIM_REFRESH);
        // Coexists with persistent arming of a different site.
        arm_once(SIM_ABSORB);
        arm(SIM_DEMOTE);
        assert!(std::panic::catch_unwind(|| fire(SIM_ABSORB)).is_err());
        fire(SIM_ABSORB);
        assert!(std::panic::catch_unwind(|| fire(SIM_DEMOTE)).is_err());
        assert!(std::panic::catch_unwind(|| fire(SIM_DEMOTE)).is_err());
        disarm_all();
    }

    #[test]
    fn unknown_sites_are_rejected() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        assert!(std::panic::catch_unwind(|| arm("sim.not-a-site")).is_err());
    }

    #[test]
    fn arm_disarm_roundtrip() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        disarm_all();
        arm(GRAPH_ADD_EDGE);
        arm(GRAPH_REMOVE_EDGE);
        assert!(armed(GRAPH_ADD_EDGE) && armed(GRAPH_REMOVE_EDGE));
        disarm(GRAPH_ADD_EDGE);
        assert!(!armed(GRAPH_ADD_EDGE) && armed(GRAPH_REMOVE_EDGE));
        disarm_all();
        assert!(!armed(GRAPH_REMOVE_EDGE));
    }
}
