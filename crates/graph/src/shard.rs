//! Shard configuration for the parallel engines.
//!
//! The batch maintenance *and* the cold-start builds of the matching indexes
//! (`igpm-core`) and the landmark index (`igpm-distance`) partition their
//! per-node state across *shards* and run the shards on scoped threads. This
//! module owns the two knobs every caller shares:
//!
//! * **how many shards** — the `IGPM_SHARDS` environment variable, defaulting
//!   to [`std::thread::available_parallelism`] (see [`configured_shards`]);
//! * **how nodes map to shards** — contiguous node-id ranges
//!   ([`ShardPlan`]).
//!
//! Contiguous ranges are chosen over `v % shards` striping deliberately: the
//! per-node arrays (masks, counter rows, distance rows) can then be handed to
//! worker threads as disjoint `&mut` slices via `split_at_mut` — no atomics,
//! no `unsafe`, no locks on the hot path — and each shard walks its rows in
//! the same cache-friendly order the sequential engine does. The
//! degree-biased workloads of Section 8.2 spread hot nodes roughly uniformly
//! over the id space, so contiguous ranges balance as well as striping in
//! practice while keeping the ownership arithmetic (`v / chunk`) a single
//! division.
//!
//! Shard count never changes *results*: every sharded engine in the
//! workspace is bit-identical (including the `AffStats` of `igpm-core`) for
//! every shard count, so `IGPM_SHARDS` is purely a performance knob. It lives
//! in this crate (rather than `igpm-core`, where the sharded batch engines
//! were born) so that `igpm-distance` can honour the same knob for its
//! parallel landmark build without a dependency cycle.

use std::num::NonZeroUsize;
use std::ops::Range;
use std::sync::OnceLock;

/// Upper bound on the shard count (more shards than this only adds merge
/// traffic; 64 matches the widest machines the bench sweep targets).
pub const MAX_SHARDS: usize = 64;

/// Minimum number of pending work items (worklist seeds, queued counter
/// messages, or per-node rows to derive) before a phase is worth fanning out
/// to threads. Below this the phase runs inline on the calling thread — the
/// partition/merge logic is identical, only the execution strategy changes,
/// so results are unaffected. The figure amortises ~10-50 µs of thread spawn
/// against ~50-200 ns per item.
pub const PARALLEL_WORK_THRESHOLD: usize = 4096;

/// Like [`PARALLEL_WORK_THRESHOLD`], but for bounded-simulation pair
/// (re-)evaluation, where one item is a landmark distance query costing
/// `O(|lm|)` — orders of magnitude more than a counter bump — so far fewer
/// items amortise a spawn.
pub const PARALLEL_EVAL_THRESHOLD: usize = 256;

/// Parses a raw `IGPM_SHARDS` value. Unset or empty falls back to
/// `fallback`; anything set must be a positive integer — `0` and garbage
/// used to fall through to the fallback *silently*, masking typos in CI
/// matrices and job configs, so they are hard errors now.
fn shards_from(raw: Option<&str>, fallback: usize) -> Result<usize, String> {
    let Some(raw) = raw else { return Ok(fallback) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(fallback);
    }
    match trimmed.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n.min(MAX_SHARDS)),
        Ok(_) => Err(format!(
            "IGPM_SHARDS must be a positive integer (shards=1 is the sequential engine), got `{raw}`"
        )),
        Err(_) => Err(format!("IGPM_SHARDS must be a positive integer, got `{raw}`")),
    }
}

/// The shard count sharded operations use when none is given explicitly:
/// `IGPM_SHARDS` if set to a positive integer, otherwise the machine's
/// available parallelism. Read once per process (the CI matrix sets the
/// variable per job, never mid-run).
///
/// # Panics
/// Panics if `IGPM_SHARDS` is set to zero or a non-numeric value — a
/// misconfigured knob must fail loudly, not silently run with a default.
pub fn configured_shards() -> usize {
    static CONFIGURED: OnceLock<usize> = OnceLock::new();
    *CONFIGURED.get_or_init(|| {
        let fallback = std::thread::available_parallelism().map(NonZeroUsize::get).unwrap_or(1);
        shards_from(std::env::var("IGPM_SHARDS").ok().as_deref(), fallback)
            .unwrap_or_else(|message| panic!("{message}"))
    })
}

/// A concrete partition of `nv` node ids into contiguous chunks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    /// Number of node ids covered.
    pub nv: usize,
    /// Ids per shard (the last shard may be shorter).
    pub chunk: usize,
    /// Number of (non-empty) shards.
    pub count: usize,
}

impl ShardPlan {
    /// Plans `shards` contiguous ranges over `nv` nodes. Degenerate inputs
    /// (zero nodes, more shards than nodes) collapse to the fewest shards
    /// that still cover everything.
    ///
    /// # Panics
    /// Panics if `shards` is zero — a zero shard count is always a
    /// configuration bug (shards = 1 is the sequential engine), and clamping
    /// it silently used to hide exactly the `IGPM_SHARDS=0` typos this
    /// assertion now surfaces.
    pub fn new(nv: usize, shards: usize) -> Self {
        // Failpoint at the earliest boundary of every sharded operation:
        // planning happens before any state is touched, so an injected panic
        // here must leave graph and indexes exactly as they were.
        crate::fail::fire(crate::fail::SHARD_PLAN);
        assert!(
            shards >= 1,
            "shard count must be at least 1 (got 0); shards=1 is the sequential engine"
        );
        let shards = shards.min(MAX_SHARDS);
        if nv == 0 {
            return ShardPlan { nv, chunk: 1, count: 1 };
        }
        let chunk = nv.div_ceil(shards).max(1);
        ShardPlan { nv, chunk, count: nv.div_ceil(chunk) }
    }

    /// The shard owning node id `v`.
    #[inline]
    pub fn owner(&self, v: usize) -> usize {
        debug_assert!(v < self.nv, "node {v} outside the planned range {}", self.nv);
        v / self.chunk
    }

    /// The node-id range owned by shard `s`.
    pub fn range(&self, s: usize) -> Range<usize> {
        let start = s * self.chunk;
        start..((start + self.chunk).min(self.nv))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_cover_every_node_exactly_once() {
        for nv in [0usize, 1, 7, 64, 1000, 1001] {
            for shards in [1usize, 2, 3, 4, 7, 8, 64, 1000] {
                let plan = ShardPlan::new(nv, shards);
                assert!(plan.count >= 1);
                let covered: usize = (0..plan.count).map(|s| plan.range(s).len()).sum();
                assert_eq!(covered, nv, "nv={nv} shards={shards}");
                for v in 0..nv {
                    let owner = plan.owner(v);
                    assert!(plan.range(owner).contains(&v), "nv={nv} shards={shards} v={v}");
                }
            }
        }
    }

    #[test]
    fn plan_collapses_degenerate_inputs() {
        assert_eq!(ShardPlan::new(0, 8).count, 1);
        assert_eq!(ShardPlan::new(3, 8).count, 3, "never more shards than nodes");
        assert_eq!(ShardPlan::new(10, 4).chunk, 3);
        assert_eq!(ShardPlan::new(10, 4).count, 4);
    }

    #[test]
    fn shards_env_parsing() {
        assert_eq!(shards_from(None, 6), Ok(6));
        assert_eq!(shards_from(Some(""), 6), Ok(6), "empty is treated as unset");
        assert_eq!(shards_from(Some("4"), 6), Ok(4));
        assert_eq!(shards_from(Some(" 2 "), 6), Ok(2));
        assert_eq!(shards_from(Some("4096"), 6), Ok(MAX_SHARDS), "clamped to the maximum");
    }

    #[test]
    fn invalid_shards_env_values_are_hard_errors() {
        // `IGPM_SHARDS=0` and non-numeric values used to fall through to the
        // fallback silently; they must be rejected with a clear message.
        let zero = shards_from(Some("0"), 6).unwrap_err();
        assert!(zero.contains("positive integer"), "unhelpful error: {zero}");
        assert!(zero.contains('0'), "error must echo the offending value: {zero}");
        let garbage = shards_from(Some("lots"), 6).unwrap_err();
        assert!(garbage.contains("lots"), "error must echo the offending value: {garbage}");
        assert!(shards_from(Some("-3"), 6).is_err(), "negative values are rejected");
        assert!(shards_from(Some("2.5"), 6).is_err(), "fractional values are rejected");
    }

    #[test]
    #[should_panic(expected = "shard count must be at least 1")]
    fn zero_shard_plan_is_rejected_at_construction() {
        let _ = ShardPlan::new(10, 0);
    }
}
