//! Strongly connected components and condensation graphs.
//!
//! The incremental simulation algorithm for general (possibly cyclic)
//! patterns processes candidate–candidate edges per strongly connected
//! component of the pattern (`propCC`, Fig. 9), and `minDelta` orders updates
//! by topological ranks computed over a condensation graph (Section 5.2).
//! This module provides an iterative Tarjan SCC implementation that works on
//! any adjacency structure, plus wrappers for [`DataGraph`] and [`Pattern`].

use crate::graph::DataGraph;
use crate::pattern::Pattern;

/// Identifier of a strongly connected component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SccId(pub u32);

impl SccId {
    /// Returns the identifier as an index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The strongly connected components of a directed graph over nodes
/// `0..n`, together with its condensation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StronglyConnectedComponents {
    component_of: Vec<SccId>,
    members: Vec<Vec<usize>>,
    has_self_loop: Vec<bool>,
}

impl StronglyConnectedComponents {
    /// Computes SCCs of the graph with `n` nodes and adjacency `adj`
    /// (`adj[v]` lists the successors of node `v`).
    ///
    /// Components are numbered in *reverse topological order of discovery*
    /// (Tarjan's invariant): if there is an edge from component `a` to
    /// component `b` with `a != b`, then `a.0 > b.0`.
    pub fn compute(n: usize, adj: &[Vec<usize>]) -> Self {
        assert_eq!(adj.len(), n);
        const UNVISITED: u32 = u32::MAX;

        let mut index = vec![UNVISITED; n];
        let mut lowlink = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut component_of = vec![SccId(0); n];
        let mut members: Vec<Vec<usize>> = Vec::new();
        let mut stack: Vec<usize> = Vec::new();
        let mut next_index = 0u32;

        // Iterative Tarjan: (node, next-child-position) call frames.
        let mut call_stack: Vec<(usize, usize)> = Vec::new();

        for start in 0..n {
            if index[start] != UNVISITED {
                continue;
            }
            call_stack.push((start, 0));
            while let Some(&mut (v, ref mut child_pos)) = call_stack.last_mut() {
                if *child_pos == 0 {
                    index[v] = next_index;
                    lowlink[v] = next_index;
                    next_index += 1;
                    stack.push(v);
                    on_stack[v] = true;
                }
                let mut recursed = false;
                while *child_pos < adj[v].len() {
                    let w = adj[v][*child_pos];
                    *child_pos += 1;
                    if index[w] == UNVISITED {
                        call_stack.push((w, 0));
                        recursed = true;
                        break;
                    } else if on_stack[w] {
                        lowlink[v] = lowlink[v].min(index[w]);
                    }
                }
                if recursed {
                    continue;
                }
                // v is finished.
                if lowlink[v] == index[v] {
                    let comp_id = SccId(members.len() as u32);
                    let mut component = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack invariant");
                        on_stack[w] = false;
                        component_of[w] = comp_id;
                        component.push(w);
                        if w == v {
                            break;
                        }
                    }
                    component.sort_unstable();
                    members.push(component);
                }
                call_stack.pop();
                if let Some(&mut (parent, _)) = call_stack.last_mut() {
                    lowlink[parent] = lowlink[parent].min(lowlink[v]);
                }
            }
        }

        let mut has_self_loop = vec![false; members.len()];
        for (v, targets) in adj.iter().enumerate() {
            if targets.contains(&v) {
                has_self_loop[component_of[v].index()] = true;
            }
        }

        StronglyConnectedComponents { component_of, members, has_self_loop }
    }

    /// Computes the SCCs of a data graph.
    pub fn of_graph(graph: &DataGraph) -> Self {
        let adj: Vec<Vec<usize>> =
            graph.nodes().map(|v| graph.children(v).iter().map(|c| c.index()).collect()).collect();
        Self::compute(graph.node_count(), &adj)
    }

    /// Computes the SCCs of a pattern graph.
    pub fn of_pattern(pattern: &Pattern) -> Self {
        let adj: Vec<Vec<usize>> = pattern
            .nodes()
            .map(|u| pattern.children(u).iter().map(|&(c, _)| c.index()).collect())
            .collect();
        Self::compute(pattern.node_count(), &adj)
    }

    /// The component containing node `v`.
    #[inline]
    pub fn component_of(&self, v: usize) -> SccId {
        self.component_of[v]
    }

    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.members.len()
    }

    /// The (sorted) member nodes of a component.
    pub fn members(&self, id: SccId) -> &[usize] {
        &self.members[id.index()]
    }

    /// True if the component is *nontrivial*: it contains at least two nodes,
    /// or a single node with a self-loop (i.e. it contains a cycle).
    pub fn is_nontrivial(&self, id: SccId) -> bool {
        self.members[id.index()].len() > 1 || self.has_self_loop[id.index()]
    }

    /// Iterates over all component identifiers.
    pub fn components(&self) -> impl Iterator<Item = SccId> + '_ {
        (0..self.members.len() as u32).map(SccId)
    }

    /// Builds the condensation (SCC graph) given the original adjacency.
    pub fn condensation(&self, adj: &[Vec<usize>]) -> CondensationGraph {
        let k = self.component_count();
        let mut edges: Vec<Vec<SccId>> = vec![Vec::new(); k];
        for (v, targets) in adj.iter().enumerate() {
            let cv = self.component_of[v];
            for &w in targets {
                let cw = self.component_of[w];
                if cv != cw && !edges[cv.index()].contains(&cw) {
                    edges[cv.index()].push(cw);
                }
            }
        }
        CondensationGraph {
            out: edges,
            nontrivial: (0..k as u32).map(|i| self.is_nontrivial(SccId(i))).collect(),
        }
    }
}

/// The condensation (SCC graph) of a directed graph: one node per component,
/// edges between distinct components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondensationGraph {
    out: Vec<Vec<SccId>>,
    nontrivial: Vec<bool>,
}

impl CondensationGraph {
    /// Number of components.
    pub fn component_count(&self) -> usize {
        self.out.len()
    }

    /// Successor components of `id`.
    pub fn children(&self, id: SccId) -> &[SccId] {
        &self.out[id.index()]
    }

    /// True if the component contains a cycle.
    pub fn is_nontrivial(&self, id: SccId) -> bool {
        self.nontrivial[id.index()]
    }

    /// Returns, for every component, whether it can *reach* (via zero or more
    /// condensation edges) a nontrivial component. Used by the topological
    /// rank computation of Section 5.2 (rank `∞`).
    pub fn reaches_nontrivial(&self) -> Vec<bool> {
        let k = self.component_count();
        let mut reaches = self.nontrivial.clone();
        // Components are numbered in reverse topological order (Tarjan), so a
        // single ascending pass sees every successor before its predecessors.
        for id in 0..k {
            if reaches[id] {
                continue;
            }
            if self.out[id].iter().any(|c| reaches[c.index()]) {
                reaches[id] = true;
            }
        }
        // The ascending pass relies on successor components having smaller
        // ids; fall back to a fixpoint if that ever fails (defensive).
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..k {
                if !reaches[id] && self.out[id].iter().any(|c| reaches[c.index()]) {
                    reaches[id] = true;
                    changed = true;
                }
            }
        }
        reaches
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attributes;
    use crate::pattern::EdgeBound;

    fn adj(edges: &[(usize, usize)], n: usize) -> Vec<Vec<usize>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u].push(v);
        }
        a
    }

    #[test]
    fn single_cycle_is_one_component() {
        let a = adj(&[(0, 1), (1, 2), (2, 0)], 3);
        let scc = StronglyConnectedComponents::compute(3, &a);
        assert_eq!(scc.component_count(), 1);
        assert!(scc.is_nontrivial(SccId(0)));
        assert_eq!(scc.members(SccId(0)), &[0, 1, 2]);
    }

    #[test]
    fn dag_has_singleton_components() {
        let a = adj(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let scc = StronglyConnectedComponents::compute(4, &a);
        assert_eq!(scc.component_count(), 4);
        for id in scc.components() {
            assert!(!scc.is_nontrivial(id));
            assert_eq!(scc.members(id).len(), 1);
        }
        // Tarjan numbering: edges go from higher to lower component ids.
        for (u, targets) in a.iter().enumerate() {
            for &v in targets {
                assert!(scc.component_of(u).0 > scc.component_of(v).0);
            }
        }
    }

    #[test]
    fn self_loop_makes_component_nontrivial() {
        let a = adj(&[(0, 0), (0, 1)], 2);
        let scc = StronglyConnectedComponents::compute(2, &a);
        assert_eq!(scc.component_count(), 2);
        assert!(scc.is_nontrivial(scc.component_of(0)));
        assert!(!scc.is_nontrivial(scc.component_of(1)));
    }

    #[test]
    fn two_cycles_connected_by_bridge() {
        // cycle {0,1}, bridge 1->2, cycle {2,3}
        let a = adj(&[(0, 1), (1, 0), (1, 2), (2, 3), (3, 2)], 4);
        let scc = StronglyConnectedComponents::compute(4, &a);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(0), scc.component_of(1));
        assert_eq!(scc.component_of(2), scc.component_of(3));
        assert_ne!(scc.component_of(0), scc.component_of(2));

        let cond = scc.condensation(&a);
        assert_eq!(cond.component_count(), 2);
        let top = scc.component_of(0);
        let bottom = scc.component_of(2);
        assert_eq!(cond.children(top), &[bottom]);
        assert!(cond.children(bottom).is_empty());
        assert!(cond.is_nontrivial(top));
        let reach = cond.reaches_nontrivial();
        assert!(reach[top.index()]);
        assert!(reach[bottom.index()]);
    }

    #[test]
    fn reaches_nontrivial_only_upstream_of_cycles() {
        // 0 -> 1 -> 2 <-> 3, plus isolated 4 and 5 -> 4
        let a = adj(&[(0, 1), (1, 2), (2, 3), (3, 2), (5, 4)], 6);
        let scc = StronglyConnectedComponents::compute(6, &a);
        let cond = scc.condensation(&a);
        let reach = cond.reaches_nontrivial();
        assert!(reach[scc.component_of(0).index()]);
        assert!(reach[scc.component_of(1).index()]);
        assert!(reach[scc.component_of(2).index()]);
        assert!(!reach[scc.component_of(4).index()]);
        assert!(!reach[scc.component_of(5).index()]);
    }

    #[test]
    fn wrappers_for_graph_and_pattern() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        let c = g.add_node(Attributes::labeled("c"));
        g.add_edge(a, b);
        g.add_edge(b, a);
        g.add_edge(b, c);
        let scc = StronglyConnectedComponents::of_graph(&g);
        assert_eq!(scc.component_count(), 2);
        assert_eq!(scc.component_of(a.index()), scc.component_of(b.index()));

        let mut p = Pattern::new();
        let u0 = p.add_labeled_node("x");
        let u1 = p.add_labeled_node("y");
        p.add_edge(u0, u1, EdgeBound::ONE);
        p.add_edge(u1, u0, EdgeBound::ONE);
        let pscc = StronglyConnectedComponents::of_pattern(&p);
        assert_eq!(pscc.component_count(), 1);
        assert!(pscc.is_nontrivial(SccId(0)));
    }

    #[test]
    fn long_path_does_not_overflow_stack() {
        // 100_000-node path exercises the iterative implementation.
        let n = 100_000;
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        let a = adj(&edges, n);
        let scc = StronglyConnectedComponents::compute(n, &a);
        assert_eq!(scc.component_count(), n);
    }

    #[test]
    fn empty_graph() {
        let scc = StronglyConnectedComponents::compute(0, &[]);
        assert_eq!(scc.component_count(), 0);
        let cond = scc.condensation(&[]);
        assert_eq!(cond.component_count(), 0);
        assert!(cond.reaches_nontrivial().is_empty());
    }
}
