//! CRC32 (IEEE 802.3 polynomial) for the durability layer.
//!
//! Both persistence formats need bit-rot detection: the binary graph
//! snapshots of [`crate::io`] carry a trailing checksum, and every
//! write-ahead-log record of [`crate::wal`] is checksummed so a torn tail can
//! be distinguished from a clean end-of-log. The container image ships no
//! checksum crates, so the classic byte-at-a-time table implementation lives
//! here — ~300 MB/s, far faster than the disk writes it guards.
//!
//! The polynomial (`0xEDB8_8320`, reflected) and the init/final XOR match
//! zlib's `crc32()`, so snapshots can be checked with standard tools.

/// The reflected CRC32 lookup table, built at compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// Streaming CRC32 state: [`Crc32::update`] over any number of slices, then
/// [`Crc32::finalize`]. Equivalent to [`crc32`] over the concatenation.
#[derive(Debug, Clone, Copy)]
pub struct Crc32 {
    state: u32,
}

impl Crc32 {
    /// Fresh state (the standard `0xFFFF_FFFF` init).
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Folds `bytes` into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        for &byte in bytes {
            self.state =
                (self.state >> 8) ^ TABLE[((self.state ^ u32::from(byte)) & 0xFF) as usize];
        }
    }

    /// The checksum of everything fed so far.
    pub fn finalize(self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = Crc32::new();
    crc.update(bytes);
    crc.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_vectors() {
        // Standard check values (zlib / IEEE 802.3).
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_equals_one_shot() {
        let data = b"incremental graph pattern matching";
        for split in 0..data.len() {
            let mut crc = Crc32::new();
            crc.update(&data[..split]);
            crc.update(&data[split..]);
            assert_eq!(crc.finalize(), crc32(data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"durability".to_vec();
        let reference = crc32(&data);
        for i in 0..data.len() * 8 {
            let mut flipped = data.clone();
            flipped[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&flipped), reference, "bit {i} flip undetected");
        }
    }
}
