//! Result graphs `G_r` and match deltas `ΔM`.
//!
//! The result graph of a pattern `P` in a data graph `G` (Section 4) is a
//! graph representation of the match `M(P, G)`: its nodes are the data nodes
//! matched by some pattern node, and there is an edge `(v1, v2)` whenever some
//! pattern edge `(u1, u2)` is mapped to a path from `v1` to `v2` satisfying
//! its bound. Changes to the match result (`ΔM`) are measured as the nodes and
//! edges not shared by the old and new result graphs, which is exactly what
//! [`ResultGraph::diff`] computes.
//!
//! Each result-graph edge records *which* pattern edges it supports; the
//! incremental algorithms need this to classify `ss`/`cs`/`cc` edges per
//! pattern edge (Tables II and III of the paper).

use crate::hash::{FastHashMap, FastHashSet};
use crate::node::NodeId;
use std::fmt;

/// Index of a pattern edge inside `Pattern::edges()`.
pub type PatternEdgeIdx = u32;

/// Graph representation of a match relation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ResultGraph {
    nodes: FastHashSet<NodeId>,
    /// `(v1, v2)` -> sorted list of pattern edges mapped onto the pair.
    edges: FastHashMap<(NodeId, NodeId), Vec<PatternEdgeIdx>>,
    out: FastHashMap<NodeId, Vec<NodeId>>,
    inc: FastHashMap<NodeId, Vec<NodeId>>,
}

impl ResultGraph {
    /// Creates an empty result graph.
    pub fn new() -> Self {
        ResultGraph::default()
    }

    /// Adds a matched data node (idempotent).
    pub fn add_node(&mut self, v: NodeId) {
        self.nodes.insert(v);
    }

    /// True if `v` is a node of the result graph.
    pub fn contains_node(&self, v: NodeId) -> bool {
        self.nodes.contains(&v)
    }

    /// Adds support of pattern edge `pe` to the result edge `(v1, v2)`,
    /// inserting the edge (and its endpoints) if needed. Returns `true` if the
    /// edge `(v1, v2)` was newly created.
    pub fn add_edge(&mut self, v1: NodeId, v2: NodeId, pe: PatternEdgeIdx) -> bool {
        self.add_node(v1);
        self.add_node(v2);
        let entry = self.edges.entry((v1, v2)).or_default();
        let created = entry.is_empty();
        if let Err(pos) = entry.binary_search(&pe) {
            entry.insert(pos, pe);
        }
        if created {
            self.out.entry(v1).or_default().push(v2);
            self.inc.entry(v2).or_default().push(v1);
        }
        created
    }

    /// Removes support of pattern edge `pe` from `(v1, v2)`. If no supporting
    /// pattern edge remains, the result edge is removed entirely. Returns
    /// `true` if the result edge disappeared.
    pub fn remove_edge_support(&mut self, v1: NodeId, v2: NodeId, pe: PatternEdgeIdx) -> bool {
        let Some(entry) = self.edges.get_mut(&(v1, v2)) else {
            return false;
        };
        if let Ok(pos) = entry.binary_search(&pe) {
            entry.remove(pos);
        }
        if entry.is_empty() {
            self.edges.remove(&(v1, v2));
            Self::detach(&mut self.out, v1, v2);
            Self::detach(&mut self.inc, v2, v1);
            true
        } else {
            false
        }
    }

    /// Removes the edge `(v1, v2)` regardless of its remaining support.
    /// Returns `true` if it existed.
    pub fn remove_edge(&mut self, v1: NodeId, v2: NodeId) -> bool {
        if self.edges.remove(&(v1, v2)).is_some() {
            Self::detach(&mut self.out, v1, v2);
            Self::detach(&mut self.inc, v2, v1);
            true
        } else {
            false
        }
    }

    fn detach(map: &mut FastHashMap<NodeId, Vec<NodeId>>, key: NodeId, value: NodeId) {
        if let Some(list) = map.get_mut(&key) {
            if let Some(pos) = list.iter().position(|&x| x == value) {
                list.swap_remove(pos);
            }
            if list.is_empty() {
                map.remove(&key);
            }
        }
    }

    /// Removes a node together with all edges attached to it. Returns the
    /// removed incident edges `(from, to)`.
    pub fn remove_node(&mut self, v: NodeId) -> Vec<(NodeId, NodeId)> {
        if !self.nodes.remove(&v) {
            return Vec::new();
        }
        let mut removed = Vec::new();
        for child in self.out.get(&v).cloned().unwrap_or_default() {
            if self.remove_edge(v, child) {
                removed.push((v, child));
            }
        }
        for parent in self.inc.get(&v).cloned().unwrap_or_default() {
            if self.remove_edge(parent, v) {
                removed.push((parent, v));
            }
        }
        removed
    }

    /// True if the result graph has the edge `(v1, v2)`.
    pub fn has_edge(&self, v1: NodeId, v2: NodeId) -> bool {
        self.edges.contains_key(&(v1, v2))
    }

    /// The pattern edges supported by `(v1, v2)` (empty if the edge is absent).
    pub fn edge_support(&self, v1: NodeId, v2: NodeId) -> &[PatternEdgeIdx] {
        self.edges.get(&(v1, v2)).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Children of `v` in the result graph.
    pub fn children(&self, v: NodeId) -> &[NodeId] {
        self.out.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Parents of `v` in the result graph.
    pub fn parents(&self, v: NodeId) -> &[NodeId] {
        self.inc.get(&v).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of nodes `|V_r|`.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of edges `|E_r|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// True if the result graph is empty (the pattern has no match).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty() && self.edges.is_empty()
    }

    /// Iterates over the matched nodes (unordered).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// Iterates over the result edges (unordered).
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.edges.keys().copied()
    }

    /// The matched nodes in sorted order (deterministic output for tests,
    /// examples and the experiment harness).
    pub fn sorted_nodes(&self) -> Vec<NodeId> {
        let mut nodes: Vec<NodeId> = self.nodes.iter().copied().collect();
        nodes.sort_unstable();
        nodes
    }

    /// The result edges in sorted order.
    pub fn sorted_edges(&self) -> Vec<(NodeId, NodeId)> {
        let mut edges: Vec<(NodeId, NodeId)> = self.edges.keys().copied().collect();
        edges.sort_unstable();
        edges
    }

    /// Clears the result graph.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.edges.clear();
        self.out.clear();
        self.inc.clear();
    }

    /// Computes `ΔM`: the nodes and edges not shared by `self` (the old result
    /// graph) and `new` (the updated result graph).
    pub fn diff(&self, new: &ResultGraph) -> DeltaM {
        let mut delta = DeltaM::default();
        for v in new.nodes() {
            if !self.contains_node(v) {
                delta.added_nodes.push(v);
            }
        }
        for v in self.nodes() {
            if !new.contains_node(v) {
                delta.removed_nodes.push(v);
            }
        }
        for (a, b) in new.edges() {
            if !self.has_edge(a, b) {
                delta.added_edges.push((a, b));
            }
        }
        for (a, b) in self.edges() {
            if !new.has_edge(a, b) {
                delta.removed_edges.push((a, b));
            }
        }
        delta.normalise();
        delta
    }
}

impl fmt::Display for ResultGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "result graph: {} nodes, {} edges", self.node_count(), self.edge_count())?;
        for (a, b) in self.sorted_edges() {
            writeln!(f, "  {a} -> {b}")?;
        }
        Ok(())
    }
}

/// The change `ΔM` to a match result, expressed over result graphs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaM {
    /// Data nodes that became matches.
    pub added_nodes: Vec<NodeId>,
    /// Data nodes that are no longer matches.
    pub removed_nodes: Vec<NodeId>,
    /// Result-graph edges that appeared.
    pub added_edges: Vec<(NodeId, NodeId)>,
    /// Result-graph edges that disappeared.
    pub removed_edges: Vec<(NodeId, NodeId)>,
}

impl DeltaM {
    /// `|ΔM|`: total number of changed nodes and edges.
    pub fn size(&self) -> usize {
        self.added_nodes.len()
            + self.removed_nodes.len()
            + self.added_edges.len()
            + self.removed_edges.len()
    }

    /// True if nothing changed.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    fn normalise(&mut self) {
        self.added_nodes.sort_unstable();
        self.removed_nodes.sort_unstable();
        self.added_edges.sort_unstable();
        self.removed_edges.sort_unstable();
    }
}

impl fmt::Display for DeltaM {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ΔM: +{} nodes, -{} nodes, +{} edges, -{} edges",
            self.added_nodes.len(),
            self.removed_nodes.len(),
            self.added_edges.len(),
            self.removed_edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId(i)
    }

    #[test]
    fn add_and_remove_edges_with_support() {
        let mut gr = ResultGraph::new();
        assert!(gr.add_edge(n(1), n(2), 0));
        assert!(!gr.add_edge(n(1), n(2), 1), "second pattern edge reuses the result edge");
        assert_eq!(gr.edge_support(n(1), n(2)), &[0, 1]);
        assert_eq!(gr.node_count(), 2);
        assert_eq!(gr.edge_count(), 1);
        assert_eq!(gr.children(n(1)), &[n(2)]);
        assert_eq!(gr.parents(n(2)), &[n(1)]);

        assert!(!gr.remove_edge_support(n(1), n(2), 0), "edge still supported by pattern edge 1");
        assert!(gr.has_edge(n(1), n(2)));
        assert!(gr.remove_edge_support(n(1), n(2), 1), "last support removed");
        assert!(!gr.has_edge(n(1), n(2)));
        assert!(gr.children(n(1)).is_empty());
        assert_eq!(gr.node_count(), 2, "nodes persist until removed explicitly");
    }

    #[test]
    fn remove_edge_support_on_missing_edge_is_noop() {
        let mut gr = ResultGraph::new();
        assert!(!gr.remove_edge_support(n(1), n(2), 0));
        assert!(!gr.remove_edge(n(1), n(2)));
    }

    #[test]
    fn remove_node_drops_incident_edges() {
        let mut gr = ResultGraph::new();
        gr.add_edge(n(1), n(2), 0);
        gr.add_edge(n(2), n(3), 0);
        gr.add_edge(n(3), n(1), 1);
        let removed = gr.remove_node(n(2));
        assert_eq!(removed.len(), 2);
        assert!(removed.contains(&(n(1), n(2))));
        assert!(removed.contains(&(n(2), n(3))));
        assert!(!gr.contains_node(n(2)));
        assert_eq!(gr.edge_count(), 1);
        assert!(gr.has_edge(n(3), n(1)));
        assert!(gr.remove_node(n(3)).contains(&(n(3), n(1))));
        assert!(gr.remove_node(n(99)).is_empty());
    }

    #[test]
    fn diff_reports_symmetric_difference() {
        let mut old = ResultGraph::new();
        old.add_edge(n(1), n(2), 0);
        old.add_node(n(9));

        let mut new = ResultGraph::new();
        new.add_edge(n(1), n(2), 0);
        new.add_edge(n(2), n(3), 0);

        let delta = old.diff(&new);
        assert_eq!(delta.added_nodes, vec![n(3)]);
        assert_eq!(delta.removed_nodes, vec![n(9)]);
        assert_eq!(delta.added_edges, vec![(n(2), n(3))]);
        assert!(delta.removed_edges.is_empty());
        assert_eq!(delta.size(), 3);
        assert!(!delta.is_empty());

        let self_delta = new.diff(&new);
        assert!(self_delta.is_empty());
        assert_eq!(self_delta.size(), 0);
    }

    #[test]
    fn sorted_accessors_are_deterministic() {
        let mut gr = ResultGraph::new();
        gr.add_edge(n(5), n(1), 0);
        gr.add_edge(n(2), n(7), 1);
        assert_eq!(gr.sorted_nodes(), vec![n(1), n(2), n(5), n(7)]);
        assert_eq!(gr.sorted_edges(), vec![(n(2), n(7)), (n(5), n(1))]);
        let text = gr.to_string();
        assert!(text.contains("2 nodes") || text.contains("4 nodes"));
    }

    #[test]
    fn clear_empties_everything() {
        let mut gr = ResultGraph::new();
        gr.add_edge(n(1), n(2), 0);
        gr.clear();
        assert!(gr.is_empty());
        assert_eq!(gr.node_count(), 0);
        assert_eq!(gr.edge_count(), 0);
    }

    #[test]
    fn delta_display_counts() {
        let mut old = ResultGraph::new();
        old.add_edge(n(1), n(2), 0);
        let new = ResultGraph::new();
        let delta = old.diff(&new);
        assert_eq!(delta.to_string(), "ΔM: +0 nodes, -2 nodes, +0 edges, -1 edges");
    }
}
