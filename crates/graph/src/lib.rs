//! # igpm-graph
//!
//! Graph substrate for the reproduction of *Incremental Graph Pattern Matching*
//! (Fan, Wang, Wu; SIGMOD 2011 / TODS 2013).
//!
//! This crate provides every graph-shaped data structure the paper relies on:
//!
//! * [`DataGraph`] — directed data graphs `G = (V, E, f_A)` whose nodes carry
//!   attribute tuples (Section 2.1 of the paper);
//! * [`Pattern`] — b-patterns `P = (V_p, E_p, f_V, f_E)` whose nodes carry
//!   search-condition [`Predicate`]s and whose edges carry hop bounds
//!   ([`EdgeBound::Hops`]) or the unbounded symbol `*` ([`EdgeBound::Unbounded`]);
//! * [`MatchRelation`] and [`ResultGraph`] — the maximum match `M(P, G)` and its
//!   graph representation `G_r` used to measure `ΔM` (Section 4);
//! * [`Update`] / [`BatchUpdate`] — unit and batch edge updates `ΔG`;
//! * strongly connected components, condensation graphs and topological
//!   (simulation) ranks used by `propCC` and `minDelta` (Section 5);
//! * bounded breadth-first traversals shared by the matching algorithms.
//!
//! The crate is deliberately free of any matching logic: algorithms live in
//! `igpm-core` and `igpm-baseline`, distance indices in `igpm-distance`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod crc32;
pub mod fail;
pub mod graph;
pub mod hash;
pub mod io;
pub mod json;
pub mod label_index;
pub mod match_relation;
pub mod node;
pub mod pattern;
pub mod predicate;
pub mod result_graph;
pub mod scc;
pub mod shard;
pub mod topo;
pub mod traversal;
pub mod update;
pub mod wal;

pub use attr::{AttrValue, Attributes, CompareOp};
pub use graph::DataGraph;
pub use hash::{FastHashMap, FastHashSet};
pub use json::{JsonError, JsonValue};
pub use label_index::{CandidateDomain, LabelIndex};
pub use match_relation::{MatchDelta, MatchRelation};
pub use node::NodeId;
pub use pattern::{EdgeBound, Pattern, PatternEdge, PatternNodeId};
pub use predicate::{Atom, Predicate};
pub use result_graph::{DeltaM, ResultGraph};
pub use scc::{CondensationGraph, SccId, StronglyConnectedComponents};
pub use shard::{configured_shards, ShardPlan};
pub use topo::{topological_order, topological_ranks, Rank};
pub use update::{
    reduce_batch, reduce_batch_sharded, validate_batch, ApplyError, BatchUpdate, RejectReason,
    StagePanic, Update, UpdateRejection,
};
pub use wal::{
    configured_fsync, fsync_policy_from, load_latest_checkpoint, read_checkpoint, write_checkpoint,
    Checkpoint, FsyncPolicy, Wal, WalRecord, WalScan, WalTruncation,
};

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::attr::{AttrValue, Attributes, CompareOp};
    pub use crate::graph::DataGraph;
    pub use crate::match_relation::{MatchDelta, MatchRelation};
    pub use crate::node::NodeId;
    pub use crate::pattern::{EdgeBound, Pattern, PatternNodeId};
    pub use crate::predicate::{Atom, Predicate};
    pub use crate::result_graph::{DeltaM, ResultGraph};
    pub use crate::update::{BatchUpdate, Update};
}
