//! Pattern-node predicates: conjunctions of atomic formulas `A op a`.
//!
//! A b-pattern node `u` carries a predicate `f_V(u)` that a data node `v`
//! must satisfy (`v ~ u`, Section 2.1): for each atom `A op a` of `f_V(u)`
//! the data node must carry an attribute `A` with `v.A op a`.

use crate::attr::{AttrValue, Attributes, CompareOp};
use std::fmt;

/// A single atomic formula `A op a`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Attribute name `A`.
    pub attr: String,
    /// Comparison operator.
    pub op: CompareOp,
    /// Constant `a`.
    pub value: AttrValue,
}

impl Atom {
    /// Creates a new atom.
    pub fn new(attr: impl Into<String>, op: CompareOp, value: impl Into<AttrValue>) -> Self {
        Atom { attr: attr.into(), op, value: value.into() }
    }

    /// Evaluates the atom against a node's attribute tuple.
    pub fn satisfied_by(&self, attrs: &Attributes) -> bool {
        match attrs.get(&self.attr) {
            Some(actual) => self.op.eval(actual, &self.value),
            None => false,
        }
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} {}", self.attr, self.op, self.value)
    }
}

/// A predicate `f_V(u)`: a conjunction of [`Atom`]s.
///
/// The empty conjunction is satisfied by every node (a wildcard pattern node).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Predicate {
    atoms: Vec<Atom>,
}

impl Predicate {
    /// The always-true predicate (empty conjunction).
    pub fn any() -> Self {
        Predicate { atoms: Vec::new() }
    }

    /// A label-equality predicate `label = l`, the form used by normal
    /// patterns (graph simulation / subgraph isomorphism, Section 2.2 remark 2).
    pub fn label(label: impl Into<String>) -> Self {
        Predicate::any().and("label", CompareOp::Eq, AttrValue::Str(label.into()))
    }

    /// Adds an atom to the conjunction (builder style).
    pub fn and(
        mut self,
        attr: impl Into<String>,
        op: CompareOp,
        value: impl Into<AttrValue>,
    ) -> Self {
        self.atoms.push(Atom::new(attr, op, value));
        self
    }

    /// Convenience: adds an equality atom.
    pub fn and_eq(self, attr: impl Into<String>, value: impl Into<AttrValue>) -> Self {
        self.and(attr, CompareOp::Eq, value)
    }

    /// Adds an already-built atom.
    pub fn push(&mut self, atom: Atom) {
        self.atoms.push(atom);
    }

    /// The atoms of the conjunction.
    pub fn atoms(&self) -> &[Atom] {
        &self.atoms
    }

    /// Number of atoms (the `|pred|` parameter of the pattern generator).
    pub fn len(&self) -> usize {
        self.atoms.len()
    }

    /// True if this is the wildcard predicate.
    pub fn is_empty(&self) -> bool {
        self.atoms.is_empty()
    }

    /// Evaluates `v ~ u`: does the attribute tuple satisfy every atom?
    pub fn satisfied_by(&self, attrs: &Attributes) -> bool {
        self.atoms.iter().all(|atom| atom.satisfied_by(attrs))
    }

    /// If the predicate is exactly a label-equality test, returns the label.
    ///
    /// Used by algorithms that special-case normal patterns (e.g. VF2 and the
    /// HORNSAT baseline index candidate sets by label).
    pub fn as_label(&self) -> Option<&str> {
        if self.atoms.len() != 1 {
            return None;
        }
        self.label_atom()
    }

    /// Returns the label tested by *some* `label = l` atom of the conjunction,
    /// if one exists — even when other atoms are present.
    ///
    /// Candidate enumeration uses this as a pre-filter: the
    /// [`crate::LabelIndex`] bucket for `l` is a superset of the predicate's
    /// candidates, so only the bucket members need full predicate evaluation.
    pub fn label_atom(&self) -> Option<&str> {
        self.atoms.iter().find_map(|atom| {
            if atom.attr == "label" && atom.op == CompareOp::Eq {
                if let AttrValue::Str(label) = &atom.value {
                    return Some(label.as_str());
                }
            }
            None
        })
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.atoms.is_empty() {
            return write!(f, "true");
        }
        for (i, atom) in self.atoms.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "{atom}")?;
        }
        Ok(())
    }
}

impl From<Atom> for Predicate {
    fn from(atom: Atom) -> Self {
        Predicate { atoms: vec![atom] }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cto_aged(age: i64) -> Attributes {
        Attributes::new().with("job", "CTO").with("age", age)
    }

    #[test]
    fn empty_predicate_matches_everything() {
        assert!(Predicate::any().satisfied_by(&Attributes::new()));
        assert!(Predicate::any().satisfied_by(&cto_aged(10)));
    }

    #[test]
    fn conjunction_requires_all_atoms() {
        let pred = Predicate::any().and_eq("job", "CTO").and("age", CompareOp::Lt, 50);
        assert!(pred.satisfied_by(&cto_aged(41)));
        assert!(!pred.satisfied_by(&cto_aged(55)));
        assert!(!pred.satisfied_by(&Attributes::new().with("job", "DB").with("age", 41)));
    }

    #[test]
    fn missing_attribute_fails() {
        let pred = Predicate::any().and_eq("hobby", "golf");
        assert!(!pred.satisfied_by(&cto_aged(41)));
    }

    #[test]
    fn label_predicate_round_trip() {
        let pred = Predicate::label("AM");
        assert!(pred.satisfied_by(&Attributes::labeled("AM")));
        assert!(!pred.satisfied_by(&Attributes::labeled("FW")));
        assert_eq!(pred.as_label(), Some("AM"));
        assert_eq!(Predicate::any().as_label(), None);
        assert_eq!(Predicate::any().and("label", CompareOp::Ne, "AM").as_label(), None);
        assert_eq!(
            Predicate::label("AM").and_eq("age", 3).as_label(),
            None,
            "multi-atom predicates are not pure label tests"
        );
    }

    #[test]
    fn atom_display_and_predicate_display() {
        let atom = Atom::new("rating", CompareOp::Gt, 3);
        assert_eq!(atom.to_string(), "rating > 3");
        let pred = Predicate::any().and_eq("category", "Music").and("rating", CompareOp::Gt, 3);
        assert_eq!(pred.to_string(), r#"category = "Music" ∧ rating > 3"#);
        assert_eq!(Predicate::any().to_string(), "true");
    }

    #[test]
    fn predicate_from_atom() {
        let pred: Predicate = Atom::new("year", CompareOp::Ge, 2005).into();
        assert_eq!(pred.len(), 1);
        assert!(pred.satisfied_by(&Attributes::new().with("year", 2010)));
        assert!(!pred.satisfied_by(&Attributes::new().with("year", 1999)));
    }
}
