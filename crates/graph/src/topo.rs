//! Topological orders and topological (simulation) ranks.
//!
//! `minDelta` (Section 5.2) sorts updates by a *topological rank* defined over
//! the condensation of the graph induced by matches and candidates:
//!
//! * `r(v) = 0` if `[v]` is a trivial (acyclic) leaf component,
//! * `r(v) = ∞` if `[v]` reaches a nontrivial strongly connected component,
//! * `r(v) = max { 1 + r(v') | ([v], [v']) an edge of the condensation }` otherwise.
//!
//! Lemma 5.1: if `(u, v)` is in the maximum simulation then `r(u) ≤ r(v)`.

use crate::graph::DataGraph;
use crate::pattern::Pattern;
use crate::scc::StronglyConnectedComponents;
use std::cmp::Ordering;
use std::fmt;

/// A topological rank: a natural number or `∞`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rank {
    /// A finite rank.
    Finite(u32),
    /// The rank of nodes that reach a cycle.
    Infinite,
}

impl Rank {
    /// Rank zero (trivial leaf).
    pub const ZERO: Rank = Rank::Finite(0);

    /// `self + 1`, saturating at infinity.
    pub fn succ(self) -> Rank {
        match self {
            Rank::Finite(k) => Rank::Finite(k + 1),
            Rank::Infinite => Rank::Infinite,
        }
    }

    /// True if the rank is `∞`.
    pub fn is_infinite(self) -> bool {
        matches!(self, Rank::Infinite)
    }
}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self, other) {
            (Rank::Infinite, Rank::Infinite) => Ordering::Equal,
            (Rank::Infinite, Rank::Finite(_)) => Ordering::Greater,
            (Rank::Finite(_), Rank::Infinite) => Ordering::Less,
            (Rank::Finite(a), Rank::Finite(b)) => a.cmp(b),
        }
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Rank::Finite(k) => write!(f, "{k}"),
            Rank::Infinite => write!(f, "∞"),
        }
    }
}

/// Computes a topological order (Kahn's algorithm) of the graph with
/// adjacency `adj`; returns `None` if the graph contains a cycle.
pub fn topological_order(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut indegree = vec![0usize; n];
    for targets in adj {
        for &t in targets {
            indegree[t] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(v) = queue.pop() {
        order.push(v);
        for &t in &adj[v] {
            indegree[t] -= 1;
            if indegree[t] == 0 {
                queue.push(t);
            }
        }
    }
    if order.len() == n {
        Some(order)
    } else {
        None
    }
}

/// Topological order of a data graph (`None` if cyclic).
pub fn topological_order_of_graph(graph: &DataGraph) -> Option<Vec<usize>> {
    let adj: Vec<Vec<usize>> =
        graph.nodes().map(|v| graph.children(v).iter().map(|c| c.index()).collect()).collect();
    topological_order(&adj)
}

/// Computes the topological rank of every node of the graph with adjacency
/// `adj`, following the definition of Section 5.2.
pub fn topological_ranks(adj: &[Vec<usize>]) -> Vec<Rank> {
    let n = adj.len();
    let scc = StronglyConnectedComponents::compute(n, adj);
    let cond = scc.condensation(adj);
    let reaches_cycle = cond.reaches_nontrivial();

    // Rank per component. Components are numbered in reverse topological
    // order by Tarjan (children have smaller ids), so iterating ascending ids
    // sees every successor before its predecessors.
    let k = cond.component_count();
    let mut comp_rank = vec![Rank::ZERO; k];
    for id in 0..k {
        if reaches_cycle[id] {
            comp_rank[id] = Rank::Infinite;
            continue;
        }
        let mut rank = Rank::ZERO;
        for child in cond.children(crate::scc::SccId(id as u32)) {
            rank = rank.max(comp_rank[child.index()].succ());
        }
        comp_rank[id] = rank;
    }

    (0..n).map(|v| comp_rank[scc.component_of(v).index()]).collect()
}

/// Topological ranks of the nodes of a data graph.
pub fn topological_ranks_of_graph(graph: &DataGraph) -> Vec<Rank> {
    let adj: Vec<Vec<usize>> =
        graph.nodes().map(|v| graph.children(v).iter().map(|c| c.index()).collect()).collect();
    topological_ranks(&adj)
}

/// Topological ranks of the nodes of a pattern.
pub fn topological_ranks_of_pattern(pattern: &Pattern) -> Vec<Rank> {
    let adj: Vec<Vec<usize>> = pattern
        .nodes()
        .map(|u| pattern.children(u).iter().map(|&(c, _)| c.index()).collect())
        .collect();
    topological_ranks(&adj)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attributes;

    fn adj(edges: &[(usize, usize)], n: usize) -> Vec<Vec<usize>> {
        let mut a = vec![Vec::new(); n];
        for &(u, v) in edges {
            a[u].push(v);
        }
        a
    }

    #[test]
    fn rank_ordering_and_succ() {
        assert!(Rank::Finite(3) < Rank::Infinite);
        assert!(Rank::Finite(3) < Rank::Finite(4));
        assert_eq!(Rank::Finite(3).succ(), Rank::Finite(4));
        assert_eq!(Rank::Infinite.succ(), Rank::Infinite);
        assert!(Rank::Infinite.is_infinite());
        assert!(!Rank::ZERO.is_infinite());
        assert_eq!(Rank::Infinite.to_string(), "∞");
        assert_eq!(Rank::Finite(2).to_string(), "2");
        assert_eq!(Rank::Finite(1).max(Rank::Infinite), Rank::Infinite);
    }

    #[test]
    fn topological_order_of_dag() {
        let a = adj(&[(0, 1), (0, 2), (1, 3), (2, 3)], 4);
        let order = topological_order(&a).expect("DAG must have an order");
        let pos: Vec<usize> = {
            let mut p = vec![0; 4];
            for (i, &v) in order.iter().enumerate() {
                p[v] = i;
            }
            p
        };
        assert!(pos[0] < pos[1] && pos[0] < pos[2]);
        assert!(pos[1] < pos[3] && pos[2] < pos[3]);
    }

    #[test]
    fn topological_order_detects_cycles() {
        let a = adj(&[(0, 1), (1, 0)], 2);
        assert!(topological_order(&a).is_none());
        assert!(topological_order(&[]).is_some());
    }

    #[test]
    fn ranks_on_a_path() {
        // 0 -> 1 -> 2: leaf has rank 0, then 1, then 2.
        let a = adj(&[(0, 1), (1, 2)], 3);
        let ranks = topological_ranks(&a);
        assert_eq!(ranks, vec![Rank::Finite(2), Rank::Finite(1), Rank::Finite(0)]);
    }

    #[test]
    fn ranks_with_cycle_are_infinite_upstream() {
        // 0 -> 1 -> (2 <-> 3), 4 isolated
        let a = adj(&[(0, 1), (1, 2), (2, 3), (3, 2)], 5);
        let ranks = topological_ranks(&a);
        assert_eq!(ranks[0], Rank::Infinite);
        assert_eq!(ranks[1], Rank::Infinite);
        assert_eq!(ranks[2], Rank::Infinite);
        assert_eq!(ranks[3], Rank::Infinite);
        assert_eq!(ranks[4], Rank::Finite(0));
    }

    #[test]
    fn ranks_downstream_of_cycle_stay_finite() {
        // (0 <-> 1) -> 2 -> 3: the cycle itself and its ancestors are infinite,
        // but nodes *below* the cycle are ranked normally.
        let a = adj(&[(0, 1), (1, 0), (1, 2), (2, 3)], 4);
        let ranks = topological_ranks(&a);
        assert_eq!(ranks[0], Rank::Infinite);
        assert_eq!(ranks[1], Rank::Infinite);
        assert_eq!(ranks[2], Rank::Finite(1));
        assert_eq!(ranks[3], Rank::Finite(0));
    }

    #[test]
    fn graph_and_pattern_wrappers() {
        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        g.add_edge(a, b);
        assert_eq!(topological_ranks_of_graph(&g), vec![Rank::Finite(1), Rank::Finite(0)]);
        assert!(topological_order_of_graph(&g).is_some());

        let mut p = Pattern::new();
        let u = p.add_labeled_node("a");
        let w = p.add_labeled_node("b");
        p.add_normal_edge(u, w);
        p.add_normal_edge(w, u);
        assert_eq!(topological_ranks_of_pattern(&p), vec![Rank::Infinite, Rank::Infinite]);
    }

    #[test]
    fn lemma_5_1_sanity_on_small_case() {
        // Pattern: u0 -> u1 (ranks 1, 0). Graph: path a -> b (ranks 1, 0).
        // The simulation maps u0 -> a (rank 1 <= 1) and u1 -> b (0 <= 0).
        let mut p = Pattern::new();
        let u0 = p.add_labeled_node("a");
        let u1 = p.add_labeled_node("b");
        p.add_normal_edge(u0, u1);
        let pranks = topological_ranks_of_pattern(&p);

        let mut g = DataGraph::new();
        let a = g.add_node(Attributes::labeled("a"));
        let b = g.add_node(Attributes::labeled("b"));
        g.add_edge(a, b);
        let granks = topological_ranks_of_graph(&g);

        assert!(pranks[u0.index()] <= granks[a.index()]);
        assert!(pranks[u1.index()] <= granks[b.index()]);
    }
}
