//! Breadth-first traversals over data graphs.
//!
//! These are the shared primitives behind the `Match` algorithm's
//! ancestor/descendant sets (`anc`/`desc`, Section 3), the BFS-based distance
//! oracle, and the affected-area exploration of the incremental algorithms.

use crate::graph::DataGraph;
use crate::hash::FastHashMap;
use crate::node::NodeId;
use std::collections::VecDeque;

/// Direction of a traversal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Follow edges from source to target (children / descendants).
    Forward,
    /// Follow edges from target to source (parents / ancestors).
    Backward,
}

impl Direction {
    #[inline]
    fn neighbours(self, graph: &DataGraph, node: NodeId) -> &[NodeId] {
        match self {
            Direction::Forward => graph.children(node),
            Direction::Backward => graph.parents(node),
        }
    }
}

/// Runs a BFS from `source` in the given `direction`, visiting nodes within
/// `max_hops` hops (use `u32::MAX` for an unbounded traversal), and returns
/// the distance (number of hops) to every reached node, including the source
/// at distance 0.
pub fn bfs_distances(
    graph: &DataGraph,
    source: NodeId,
    direction: Direction,
    max_hops: u32,
) -> FastHashMap<NodeId, u32> {
    let mut dist: FastHashMap<NodeId, u32> = FastHashMap::default();
    dist.insert(source, 0);
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d >= max_hops {
            continue;
        }
        for &w in direction.neighbours(graph, v) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Distances from `source` to every node of the graph, as a dense vector
/// (`u32::MAX` for unreachable nodes). Faster than [`bfs_distances`] when most
/// of the graph is reachable, e.g. when building a full distance matrix.
pub fn bfs_distances_dense(graph: &DataGraph, source: NodeId, direction: Direction) -> Vec<u32> {
    let mut dist = vec![u32::MAX; graph.node_count()];
    dist[source.index()] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.index()];
        for &w in direction.neighbours(graph, v) {
            if dist[w.index()] == u32::MAX {
                dist[w.index()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The nodes reachable from `source` (following `direction`) within
/// `max_hops` hops, *excluding* the source itself unless it lies on a cycle
/// of length ≤ `max_hops` (paths must be nonempty, cf. [`crate::EdgeBound`]).
pub fn nodes_within(
    graph: &DataGraph,
    source: NodeId,
    direction: Direction,
    max_hops: u32,
) -> Vec<NodeId> {
    // The nonempty-path requirement means the source is included only if it
    // can be reached from itself by a positive-length path; handle that by
    // starting the BFS at the source's neighbours.
    let mut dist: FastHashMap<NodeId, u32> = FastHashMap::default();
    let mut queue = VecDeque::new();
    if max_hops == 0 {
        return Vec::new();
    }
    for &w in direction.neighbours(graph, source) {
        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
            e.insert(1);
            queue.push_back(w);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        if d >= max_hops {
            continue;
        }
        for &w in direction.neighbours(graph, v) {
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back(w);
            }
        }
    }
    let mut nodes: Vec<NodeId> = dist.into_keys().collect();
    nodes.sort_unstable();
    nodes
}

/// The shortest positive-length distance from `from` to `to` (a nonempty
/// path), or `None` if no such path exists. `from == to` requires a cycle.
pub fn shortest_path_len(graph: &DataGraph, from: NodeId, to: NodeId) -> Option<u32> {
    let mut dist: FastHashMap<NodeId, u32> = FastHashMap::default();
    let mut queue = VecDeque::new();
    for &w in graph.children(from) {
        if w == to {
            return Some(1);
        }
        if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
            e.insert(1);
            queue.push_back(w);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[&v];
        for &w in graph.children(v) {
            if w == to {
                return Some(d + 1);
            }
            if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(w) {
                e.insert(d + 1);
                queue.push_back(w);
            }
        }
    }
    None
}

/// True if there is a nonempty path from `from` to `to` of length ≤ `max_hops`.
pub fn reachable_within(graph: &DataGraph, from: NodeId, to: NodeId, max_hops: u32) -> bool {
    match shortest_path_len(graph, from, to) {
        Some(d) => d <= max_hops,
        None => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::Attributes;

    /// Builds a graph: 0 -> 1 -> 2 -> 3, 0 -> 4, 3 -> 0 (a cycle of length 4 through 0..3).
    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        for i in 0..5 {
            g.add_node(Attributes::labeled(format!("v{i}")));
        }
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        g.add_edge(NodeId(0), NodeId(4));
        g.add_edge(NodeId(3), NodeId(0));
        g
    }

    #[test]
    fn forward_bfs_distances() {
        let g = sample();
        let dist = bfs_distances(&g, NodeId(0), Direction::Forward, u32::MAX);
        assert_eq!(dist[&NodeId(0)], 0);
        assert_eq!(dist[&NodeId(1)], 1);
        assert_eq!(dist[&NodeId(3)], 3);
        assert_eq!(dist[&NodeId(4)], 1);
        assert_eq!(dist.len(), 5);
    }

    #[test]
    fn backward_bfs_distances() {
        let g = sample();
        let dist = bfs_distances(&g, NodeId(3), Direction::Backward, u32::MAX);
        assert_eq!(dist[&NodeId(2)], 1);
        assert_eq!(dist[&NodeId(0)], 3);
        assert!(!dist.contains_key(&NodeId(4)), "4 has no path to 3");
    }

    #[test]
    fn bounded_bfs_stops_at_max_hops() {
        let g = sample();
        let dist = bfs_distances(&g, NodeId(0), Direction::Forward, 2);
        assert!(dist.contains_key(&NodeId(2)));
        assert!(!dist.contains_key(&NodeId(3)));
    }

    #[test]
    fn dense_distances_match_sparse() {
        let g = sample();
        let dense = bfs_distances_dense(&g, NodeId(0), Direction::Forward);
        let sparse = bfs_distances(&g, NodeId(0), Direction::Forward, u32::MAX);
        for v in g.nodes() {
            match sparse.get(&v) {
                Some(&d) => assert_eq!(dense[v.index()], d),
                None => assert_eq!(dense[v.index()], u32::MAX),
            }
        }
    }

    #[test]
    fn nodes_within_respects_nonempty_paths() {
        let g = sample();
        // Within 2 hops forward of node 0: {1, 2, 4}; node 0 itself needs 4 hops.
        assert_eq!(
            nodes_within(&g, NodeId(0), Direction::Forward, 2),
            vec![NodeId(1), NodeId(2), NodeId(4)]
        );
        // Within 4 hops the cycle brings node 0 back into view.
        let within4 = nodes_within(&g, NodeId(0), Direction::Forward, 4);
        assert!(within4.contains(&NodeId(0)));
        assert!(nodes_within(&g, NodeId(0), Direction::Forward, 0).is_empty());
        // Backward within 1 hop of node 0: only node 3.
        assert_eq!(nodes_within(&g, NodeId(0), Direction::Backward, 1), vec![NodeId(3)]);
    }

    #[test]
    fn shortest_path_and_reachability() {
        let g = sample();
        assert_eq!(shortest_path_len(&g, NodeId(0), NodeId(3)), Some(3));
        assert_eq!(
            shortest_path_len(&g, NodeId(0), NodeId(0)),
            Some(4),
            "self distance uses the cycle"
        );
        assert_eq!(shortest_path_len(&g, NodeId(4), NodeId(0)), None);
        assert!(reachable_within(&g, NodeId(0), NodeId(3), 3));
        assert!(!reachable_within(&g, NodeId(0), NodeId(3), 2));
        assert!(!reachable_within(&g, NodeId(4), NodeId(1), 10));
    }
}
