//! Pattern graphs (b-patterns) `P = (V_p, E_p, f_V, f_E)`.
//!
//! A b-pattern node carries a [`Predicate`] (its search condition `f_V(u)`);
//! a b-pattern edge carries an [`EdgeBound`]: either a positive integer `k`
//! (the pattern edge must map to a path of length at most `k` in the data
//! graph) or `*` (a path of arbitrary positive length). A *normal pattern* is
//! one whose edges are all bounded by 1 — the setting of traditional graph
//! simulation and subgraph isomorphism (Section 2.1).

use crate::predicate::Predicate;
use std::fmt;

/// Identifier of a pattern node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternNodeId(pub u32);

impl PatternNodeId {
    /// Returns the identifier as a `usize` index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a `PatternNodeId` from a `usize` index.
    #[inline]
    pub fn from_index(index: usize) -> Self {
        debug_assert!(index <= u32::MAX as usize);
        PatternNodeId(index as u32)
    }
}

impl fmt::Display for PatternNodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "u{}", self.0)
    }
}

/// The bound `f_E(u, u')` carried by a pattern edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeBound {
    /// The edge maps to a path of length at most `k` (k >= 1).
    Hops(u32),
    /// The edge maps to a nonempty path of arbitrary length (`*`).
    Unbounded,
}

impl EdgeBound {
    /// Bound of a normal-pattern edge (edge-to-edge mapping).
    pub const ONE: EdgeBound = EdgeBound::Hops(1);

    /// Returns `true` if a path of length `len` satisfies this bound.
    ///
    /// Paths must be nonempty (`len >= 1`), matching the definition of
    /// bounded simulation (Section 2.2: "a *nonempty* path").
    #[inline]
    pub fn admits(self, len: u32) -> bool {
        if len == 0 {
            return false;
        }
        match self {
            EdgeBound::Hops(k) => len <= k,
            EdgeBound::Unbounded => true,
        }
    }

    /// The finite bound, if any.
    #[inline]
    pub fn finite(self) -> Option<u32> {
        match self {
            EdgeBound::Hops(k) => Some(k),
            EdgeBound::Unbounded => None,
        }
    }

    /// True for the bound 1 used by normal patterns.
    #[inline]
    pub fn is_unit(self) -> bool {
        self == EdgeBound::ONE
    }
}

impl fmt::Display for EdgeBound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EdgeBound::Hops(k) => write!(f, "{k}"),
            EdgeBound::Unbounded => write!(f, "*"),
        }
    }
}

impl From<u32> for EdgeBound {
    fn from(k: u32) -> Self {
        assert!(k >= 1, "edge bounds must be positive");
        EdgeBound::Hops(k)
    }
}

/// A directed pattern edge `(u, u')` with its bound `f_E(u, u')`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PatternEdge {
    /// Source pattern node `u`.
    pub from: PatternNodeId,
    /// Target pattern node `u'`.
    pub to: PatternNodeId,
    /// Bound on the length of the data-graph path the edge maps to.
    pub bound: EdgeBound,
}

/// A b-pattern.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Pattern {
    predicates: Vec<Predicate>,
    edges: Vec<PatternEdge>,
    out: Vec<Vec<(PatternNodeId, EdgeBound)>>,
    inc: Vec<Vec<(PatternNodeId, EdgeBound)>>,
}

impl Pattern {
    /// Creates an empty pattern.
    pub fn new() -> Self {
        Pattern::default()
    }

    /// Adds a pattern node carrying `predicate` and returns its identifier.
    pub fn add_node(&mut self, predicate: Predicate) -> PatternNodeId {
        let id = PatternNodeId::from_index(self.predicates.len());
        self.predicates.push(predicate);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        id
    }

    /// Adds a pattern node whose predicate is a label-equality test.
    pub fn add_labeled_node(&mut self, label: impl Into<String>) -> PatternNodeId {
        self.add_node(Predicate::label(label))
    }

    /// Adds a pattern edge `(from, to)` with `bound`.
    ///
    /// # Panics
    /// Panics if either endpoint is unknown or if the edge already exists
    /// (patterns are simple graphs).
    pub fn add_edge(&mut self, from: PatternNodeId, to: PatternNodeId, bound: EdgeBound) {
        assert!(from.index() < self.predicates.len(), "pattern edge source out of bounds");
        assert!(to.index() < self.predicates.len(), "pattern edge target out of bounds");
        assert!(
            !self.out[from.index()].iter().any(|&(t, _)| t == to),
            "duplicate pattern edge ({from}, {to})"
        );
        self.edges.push(PatternEdge { from, to, bound });
        self.out[from.index()].push((to, bound));
        self.inc[to.index()].push((from, bound));
    }

    /// Adds a normal (bound 1) pattern edge.
    pub fn add_normal_edge(&mut self, from: PatternNodeId, to: PatternNodeId) {
        self.add_edge(from, to, EdgeBound::ONE);
    }

    /// Number of pattern nodes `|V_p|`.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.predicates.len()
    }

    /// Number of pattern edges `|E_p|`.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Pattern size `|P| = |V_p| + |E_p|`.
    #[inline]
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The predicate `f_V(u)` of a pattern node.
    #[inline]
    pub fn predicate(&self, node: PatternNodeId) -> &Predicate {
        &self.predicates[node.index()]
    }

    /// Iterates over pattern node identifiers.
    pub fn nodes(&self) -> impl Iterator<Item = PatternNodeId> + '_ {
        (0..self.predicates.len()).map(PatternNodeId::from_index)
    }

    /// All pattern edges.
    #[inline]
    pub fn edges(&self) -> &[PatternEdge] {
        &self.edges
    }

    /// Children of a pattern node with the bounds of the connecting edges.
    #[inline]
    pub fn children(&self, node: PatternNodeId) -> &[(PatternNodeId, EdgeBound)] {
        &self.out[node.index()]
    }

    /// Parents of a pattern node with the bounds of the connecting edges.
    #[inline]
    pub fn parents(&self, node: PatternNodeId) -> &[(PatternNodeId, EdgeBound)] {
        &self.inc[node.index()]
    }

    /// Out-degree of a pattern node.
    #[inline]
    pub fn out_degree(&self, node: PatternNodeId) -> usize {
        self.out[node.index()].len()
    }

    /// In-degree of a pattern node.
    #[inline]
    pub fn in_degree(&self, node: PatternNodeId) -> usize {
        self.inc[node.index()].len()
    }

    /// The bound of edge `(from, to)`, if that pattern edge exists.
    pub fn edge_bound(&self, from: PatternNodeId, to: PatternNodeId) -> Option<EdgeBound> {
        self.out[from.index()].iter().find(|&&(t, _)| t == to).map(|&(_, b)| b)
    }

    /// True if every edge bound is 1, i.e. the pattern is a *normal pattern*
    /// usable with graph simulation and subgraph isomorphism.
    pub fn is_normal(&self) -> bool {
        self.edges.iter().all(|e| e.bound.is_unit())
    }

    /// True if the pattern has no directed cycle.
    ///
    /// DAG patterns admit the optimal `IncMatch+dag` insertion algorithm
    /// (Theorem 5.1(2b)) and are required by the `IncBMatchm` baseline.
    pub fn is_dag(&self) -> bool {
        // Kahn's algorithm on the pattern.
        let n = self.node_count();
        let mut indegree: Vec<usize> = (0..n).map(|i| self.inc[i].len()).collect();
        let mut queue: Vec<usize> = (0..n).filter(|&i| indegree[i] == 0).collect();
        let mut seen = 0usize;
        while let Some(u) = queue.pop() {
            seen += 1;
            for &(child, _) in &self.out[u] {
                let d = &mut indegree[child.index()];
                *d -= 1;
                if *d == 0 {
                    queue.push(child.index());
                }
            }
        }
        seen == n
    }

    /// The largest finite bound `k_m` appearing on any edge (Section 6.3/6.4);
    /// `1` for patterns without finite bounds so that neighbourhood searches
    /// remain well-defined.
    pub fn max_finite_bound(&self) -> u32 {
        self.edges.iter().filter_map(|e| e.bound.finite()).max().unwrap_or(1)
    }

    /// Returns a copy of this pattern with every edge bound replaced by 1.
    ///
    /// Used when a bounded pattern needs to be evaluated under plain graph
    /// simulation over a result graph (Proposition 6.1 treats `P` "as a
    /// normal pattern").
    pub fn as_normal(&self) -> Pattern {
        let mut normal = Pattern::new();
        for node in self.nodes() {
            normal.add_node(self.predicate(node).clone());
        }
        for edge in &self.edges {
            normal.add_edge(edge.from, edge.to, EdgeBound::ONE);
        }
        normal
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "pattern with {} nodes, {} edges", self.node_count(), self.edge_count())?;
        for node in self.nodes() {
            writeln!(f, "  {node}: {}", self.predicate(node))?;
        }
        for edge in &self.edges {
            writeln!(f, "  {} -[{}]-> {}", edge.from, edge.bound, edge.to)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The drug-trafficking pattern P0 of Fig. 1: B -> AM (3) -> FW, AM -> B,
    /// B -> S (1) -> FW, FW -> AM.
    fn drug_ring_pattern() -> Pattern {
        let mut p = Pattern::new();
        let b = p.add_labeled_node("B");
        let am = p.add_labeled_node("AM");
        let s = p.add_labeled_node("S");
        let fw = p.add_labeled_node("FW");
        p.add_edge(b, am, EdgeBound::ONE);
        p.add_edge(am, b, EdgeBound::ONE);
        p.add_edge(b, s, EdgeBound::ONE);
        p.add_edge(s, fw, EdgeBound::Hops(1));
        p.add_edge(am, fw, EdgeBound::Hops(3));
        p.add_edge(fw, am, EdgeBound::Hops(3));
        p
    }

    #[test]
    fn build_and_inspect() {
        let p = drug_ring_pattern();
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 6);
        assert_eq!(p.size(), 10);
        let b = PatternNodeId(0);
        let am = PatternNodeId(1);
        assert_eq!(p.out_degree(b), 2);
        assert_eq!(p.in_degree(b), 1);
        assert_eq!(p.edge_bound(am, PatternNodeId(3)), Some(EdgeBound::Hops(3)));
        assert_eq!(p.edge_bound(PatternNodeId(3), b), None);
        assert_eq!(p.predicate(am).as_label(), Some("AM"));
    }

    #[test]
    fn normal_and_dag_detection() {
        let p = drug_ring_pattern();
        assert!(!p.is_normal(), "P0 has a 3-hop edge");
        assert!(!p.is_dag(), "P0 has the B <-> AM cycle");

        let mut tree = Pattern::new();
        let a = tree.add_labeled_node("a");
        let b = tree.add_labeled_node("b");
        let c = tree.add_labeled_node("c");
        tree.add_normal_edge(a, b);
        tree.add_normal_edge(a, c);
        assert!(tree.is_normal());
        assert!(tree.is_dag());
    }

    #[test]
    fn edge_bound_admits_paths() {
        assert!(!EdgeBound::Hops(3).admits(0), "paths must be nonempty");
        assert!(EdgeBound::Hops(3).admits(1));
        assert!(EdgeBound::Hops(3).admits(3));
        assert!(!EdgeBound::Hops(3).admits(4));
        assert!(EdgeBound::Unbounded.admits(1_000_000));
        assert!(!EdgeBound::Unbounded.admits(0));
        assert_eq!(EdgeBound::Hops(5).finite(), Some(5));
        assert_eq!(EdgeBound::Unbounded.finite(), None);
        assert!(EdgeBound::ONE.is_unit());
        assert_eq!(EdgeBound::from(4), EdgeBound::Hops(4));
    }

    #[test]
    fn max_finite_bound_and_as_normal() {
        let p = drug_ring_pattern();
        assert_eq!(p.max_finite_bound(), 3);
        let normal = p.as_normal();
        assert!(normal.is_normal());
        assert_eq!(normal.node_count(), p.node_count());
        assert_eq!(normal.edge_count(), p.edge_count());

        let mut unbounded_only = Pattern::new();
        let a = unbounded_only.add_labeled_node("a");
        let b = unbounded_only.add_labeled_node("b");
        unbounded_only.add_edge(a, b, EdgeBound::Unbounded);
        assert_eq!(unbounded_only.max_finite_bound(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate pattern edge")]
    fn duplicate_edges_rejected() {
        let mut p = Pattern::new();
        let a = p.add_labeled_node("a");
        let b = p.add_labeled_node("b");
        p.add_normal_edge(a, b);
        p.add_normal_edge(a, b);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_bound_rejected() {
        let _ = EdgeBound::from(0);
    }

    #[test]
    fn display_contains_structure() {
        let p = drug_ring_pattern();
        let text = p.to_string();
        assert!(text.contains("4 nodes"));
        assert!(text.contains("-[3]->"));
        assert!(text.contains(r#"label = "AM""#));
    }

    #[test]
    fn single_cycle_pattern_is_not_dag() {
        let mut p = Pattern::new();
        let v = p.add_labeled_node("a");
        let w = p.add_labeled_node("a");
        p.add_normal_edge(v, w);
        p.add_normal_edge(w, v);
        assert!(!p.is_dag());
    }
}
