//! Inverted label → nodes index.
//!
//! The candidate sets `candt(u) ∪ match(u)` that seed every matching
//! algorithm are "all data nodes satisfying the predicate of `u`". The
//! predicates produced by the pattern generator (and by every example in the
//! paper) start with a label-equality atom, so enumerating candidates by
//! scanning all of `V` once per pattern node — `O(|V_p| · |V|)` predicate
//! evaluations — wastes almost all of its work. This index buckets the nodes
//! by their `label` attribute in one `O(|V|)` pass; a label-equality lookup
//! then returns exactly its candidates in `O(|candidates|)`, and predicates
//! that merely *contain* a label atom evaluate their remaining atoms over the
//! bucket instead of the whole graph.
//!
//! The index is a snapshot: it stays valid under edge insertions/deletions
//! (labels live on nodes) but must be rebuilt if node attributes change.

use crate::attr::Attributes;
use crate::graph::DataGraph;
use crate::hash::FastHashMap;
use crate::node::NodeId;

/// Inverted index from node label to the sorted list of nodes carrying it.
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    buckets: FastHashMap<String, Vec<NodeId>>,
    /// Nodes without a `label` attribute, in index order.
    unlabeled: Vec<NodeId>,
}

impl LabelIndex {
    /// Builds the index in one pass over the graph's nodes.
    pub fn build(graph: &DataGraph) -> Self {
        let mut index = LabelIndex::default();
        for v in graph.nodes() {
            index.insert(v, graph.attrs(v));
        }
        index
    }

    fn insert(&mut self, v: NodeId, attrs: &Attributes) {
        match attrs.label() {
            Some(label) => match self.buckets.get_mut(label) {
                Some(bucket) => bucket.push(v),
                None => {
                    self.buckets.insert(label.to_string(), vec![v]);
                }
            },
            None => self.unlabeled.push(v),
        }
    }

    /// The nodes carrying `label`, sorted by node id (insertion order is
    /// id order, so no sort is ever needed).
    pub fn nodes_with_label(&self, label: &str) -> &[NodeId] {
        self.buckets.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The nodes that carry no `label` attribute, sorted by node id.
    pub fn unlabeled_nodes(&self) -> &[NodeId] {
        &self.unlabeled
    }

    /// Number of distinct labels.
    pub fn label_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over `(label, nodes)` buckets in unspecified order.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.buckets.iter().map(|(label, nodes)| (label.as_str(), nodes.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_labeled_node("CTO");
        g.add_labeled_node("DB");
        g.add_labeled_node("CTO");
        g.add_node(Attributes::new().with("name", "anon"));
        g.add_labeled_node("Bio");
        g
    }

    #[test]
    fn buckets_nodes_by_label_in_id_order() {
        let index = LabelIndex::build(&sample());
        assert_eq!(index.nodes_with_label("CTO"), &[NodeId(0), NodeId(2)]);
        assert_eq!(index.nodes_with_label("DB"), &[NodeId(1)]);
        assert_eq!(index.nodes_with_label("Bio"), &[NodeId(4)]);
        assert!(index.nodes_with_label("Ghost").is_empty());
        assert_eq!(index.unlabeled_nodes(), &[NodeId(3)]);
        assert_eq!(index.label_count(), 3);
    }

    #[test]
    fn bucket_iteration_covers_every_labeled_node() {
        let index = LabelIndex::build(&sample());
        let total: usize = index.buckets().map(|(_, nodes)| nodes.len()).sum();
        assert_eq!(total + index.unlabeled_nodes().len(), 5);
    }

    #[test]
    fn empty_graph() {
        let index = LabelIndex::build(&DataGraph::new());
        assert_eq!(index.label_count(), 0);
        assert!(index.nodes_with_label("x").is_empty());
    }
}
