//! Inverted label → nodes index.
//!
//! The candidate sets `candt(u) ∪ match(u)` that seed every matching
//! algorithm are "all data nodes satisfying the predicate of `u`". The
//! predicates produced by the pattern generator (and by every example in the
//! paper) start with a label-equality atom, so enumerating candidates by
//! scanning all of `V` once per pattern node — `O(|V_p| · |V|)` predicate
//! evaluations — wastes almost all of its work. This index buckets the nodes
//! by their `label` attribute in one `O(|V|)` pass; a label-equality lookup
//! then returns exactly its candidates in `O(|candidates|)`, and predicates
//! that merely *contain* a label atom evaluate their remaining atoms over the
//! bucket instead of the whole graph.
//!
//! The `O(|V|)` pass itself is **shard-buildable**
//! ([`LabelIndex::build_with_shards`]): the node range is partitioned on the
//! same contiguous [`ShardPlan`] the matching engines use, each shard buckets
//! its own range on a scoped thread, and the per-shard buckets are merged in
//! ascending node order — so every shard count produces the *same* index
//! (bucket contents and their internal order alike), and `shards = 1` is the
//! sequential pass.
//!
//! The index is a snapshot over edges: it stays valid under edge
//! insertions/deletions (labels live on nodes) but must be rebuilt if node
//! attributes change. Nodes *appended* to the graph after the build can be
//! absorbed without a rebuild through [`LabelIndex::ensure_node_capacity`] —
//! the node-churn growth hook every other index in the workspace exposes — so
//! churned nodes enter the candidate scan exactly as if the index had been
//! built after them.

use crate::attr::Attributes;
use crate::graph::DataGraph;
use crate::hash::FastHashMap;
use crate::node::NodeId;
use crate::predicate::Predicate;
use crate::shard::{configured_shards, ShardPlan, PARALLEL_WORK_THRESHOLD};

/// The node domain a predicate's candidate scan must consider, classified by
/// how much of the work the label index already did ([`LabelIndex::predicate_domain`]).
///
/// This is the selectivity triage every candidate computation in the
/// workspace shares — the per-pattern scans in `igpm-core` and the service
/// layer's interned candidate sets resolve predicates through the same three
/// tiers, so a `(label, predicate)` pair always produces the same node list
/// regardless of which path computed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateDomain<'a> {
    /// The predicate is exactly a label-equality atom: the bucket *is* the
    /// candidate set, already sorted by node id. No predicate evaluation is
    /// needed.
    Bucket(&'a [NodeId]),
    /// The predicate contains a label atom plus further atoms: the bucket is
    /// a superset, and the remaining atoms must be evaluated over it.
    FilteredBucket(&'a [NodeId]),
    /// The predicate has no label-equality atom: every node of the graph must
    /// be evaluated.
    AllNodes,
}

/// Inverted index from node label to the sorted list of nodes carrying it.
///
/// Equality compares *content*: bucket vectors element-for-element (node
/// order matters — it is part of the determinism contract) and the bucket map
/// as a set of `(label, nodes)` entries, independent of hash-bucket order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LabelIndex {
    buckets: FastHashMap<String, Vec<NodeId>>,
    /// Nodes without a `label` attribute, in index order.
    unlabeled: Vec<NodeId>,
    /// Number of node ids covered so far (`0..covered` have been bucketed).
    covered: usize,
}

impl LabelIndex {
    /// Builds the index over the graph's nodes, sharded across
    /// [`configured_shards`] node ranges (see
    /// [`LabelIndex::build_with_shards`]).
    pub fn build(graph: &DataGraph) -> Self {
        Self::build_with_shards(graph, configured_shards())
    }

    /// [`LabelIndex::build`] with an explicit shard count (`IGPM_SHARDS` and
    /// machine parallelism are ignored). Each shard buckets one contiguous
    /// node range on a scoped thread; the per-shard buckets are concatenated
    /// in shard (= ascending node) order, so the result is identical for
    /// every shard count and `shards = 1` is the sequential pass.
    pub fn build_with_shards(graph: &DataGraph, shards: usize) -> Self {
        let nv = graph.node_count();
        let plan = ShardPlan::new(nv, shards);
        if plan.count == 1 || nv < PARALLEL_WORK_THRESHOLD {
            let mut index = LabelIndex::default();
            index.absorb_range(graph, 0..nv);
            index.covered = nv;
            return index;
        }
        let partials: Vec<LabelIndex> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..plan.count)
                .map(|shard| {
                    let range = plan.range(shard);
                    scope.spawn(move || {
                        let mut partial = LabelIndex::default();
                        partial.absorb_range(graph, range);
                        partial
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("label shard panicked")).collect()
        });
        // Ordered merge: shard ranges ascend, and every per-shard bucket is in
        // ascending node order, so appending shard by shard keeps each merged
        // bucket sorted — the exact list the sequential pass produces.
        let mut index = LabelIndex::default();
        for partial in partials {
            for (label, nodes) in partial.buckets {
                index.buckets.entry(label).or_default().extend(nodes);
            }
            index.unlabeled.extend(partial.unlabeled);
        }
        index.covered = nv;
        index
    }

    /// Buckets the nodes of one id range (ascending).
    fn absorb_range(&mut self, graph: &DataGraph, range: std::ops::Range<usize>) {
        for v in range {
            let v = NodeId::from_index(v);
            self.insert(v, graph.attrs(v));
        }
    }

    fn insert(&mut self, v: NodeId, attrs: &Attributes) {
        match attrs.label() {
            Some(label) => match self.buckets.get_mut(label) {
                Some(bucket) => bucket.push(v),
                None => {
                    self.buckets.insert(label.to_string(), vec![v]);
                }
            },
            None => self.unlabeled.push(v),
        }
    }

    /// Absorbs the nodes appended to `graph` since the index was built (node
    /// ids grow monotonically, so appending keeps every bucket sorted). Edge
    /// churn never invalidates the index; node churn is covered by calling
    /// this before the next candidate scan. No-op when nothing grew.
    pub fn ensure_node_capacity(&mut self, graph: &DataGraph) {
        let nv = graph.node_count();
        if nv <= self.covered {
            return;
        }
        self.absorb_range(graph, self.covered..nv);
        self.covered = nv;
    }

    /// Number of node ids covered by the index (nodes added to the graph
    /// afterwards need [`LabelIndex::ensure_node_capacity`]).
    pub fn covered_nodes(&self) -> usize {
        self.covered
    }

    /// The nodes carrying `label`, sorted by node id (insertion order is
    /// id order, so no sort is ever needed).
    pub fn nodes_with_label(&self, label: &str) -> &[NodeId] {
        self.buckets.get(label).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Classifies the node domain `pred`'s candidate scan must consider: the
    /// label bucket verbatim (pure label test), the bucket as a pre-filter
    /// (label atom plus more), or the whole node range (no label atom). The
    /// returned slices cover exactly [`LabelIndex::covered_nodes`] ids — call
    /// [`LabelIndex::ensure_node_capacity`] first under node churn.
    pub fn predicate_domain(&self, pred: &Predicate) -> CandidateDomain<'_> {
        if let Some(label) = pred.as_label() {
            CandidateDomain::Bucket(self.nodes_with_label(label))
        } else if let Some(label) = pred.label_atom() {
            CandidateDomain::FilteredBucket(self.nodes_with_label(label))
        } else {
            CandidateDomain::AllNodes
        }
    }

    /// The nodes that carry no `label` attribute, sorted by node id.
    pub fn unlabeled_nodes(&self) -> &[NodeId] {
        &self.unlabeled
    }

    /// Number of distinct labels.
    pub fn label_count(&self) -> usize {
        self.buckets.len()
    }

    /// Iterates over `(label, nodes)` buckets in unspecified order.
    pub fn buckets(&self) -> impl Iterator<Item = (&str, &[NodeId])> {
        self.buckets.iter().map(|(label, nodes)| (label.as_str(), nodes.as_slice()))
    }

    /// The buckets as a sorted `(label, nodes)` list plus the unlabeled tail —
    /// a canonical rendering for byte-equality assertions in the equivalence
    /// suites (map iteration order is unspecified; this is not).
    pub fn snapshot(&self) -> (Vec<(String, Vec<NodeId>)>, Vec<NodeId>) {
        let mut buckets: Vec<(String, Vec<NodeId>)> =
            self.buckets.iter().map(|(label, nodes)| (label.clone(), nodes.clone())).collect();
        buckets.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        (buckets, self.unlabeled.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DataGraph {
        let mut g = DataGraph::new();
        g.add_labeled_node("CTO");
        g.add_labeled_node("DB");
        g.add_labeled_node("CTO");
        g.add_node(Attributes::new().with("name", "anon"));
        g.add_labeled_node("Bio");
        g
    }

    #[test]
    fn buckets_nodes_by_label_in_id_order() {
        let index = LabelIndex::build(&sample());
        assert_eq!(index.nodes_with_label("CTO"), &[NodeId(0), NodeId(2)]);
        assert_eq!(index.nodes_with_label("DB"), &[NodeId(1)]);
        assert_eq!(index.nodes_with_label("Bio"), &[NodeId(4)]);
        assert!(index.nodes_with_label("Ghost").is_empty());
        assert_eq!(index.unlabeled_nodes(), &[NodeId(3)]);
        assert_eq!(index.label_count(), 3);
        assert_eq!(index.covered_nodes(), 5);
    }

    #[test]
    fn bucket_iteration_covers_every_labeled_node() {
        let index = LabelIndex::build(&sample());
        let total: usize = index.buckets().map(|(_, nodes)| nodes.len()).sum();
        assert_eq!(total + index.unlabeled_nodes().len(), 5);
    }

    #[test]
    fn empty_graph() {
        let index = LabelIndex::build(&DataGraph::new());
        assert_eq!(index.label_count(), 0);
        assert!(index.nodes_with_label("x").is_empty());
        for shards in [1, 4] {
            assert_eq!(LabelIndex::build_with_shards(&DataGraph::new(), shards), index);
        }
    }

    #[test]
    fn sharded_builds_match_sequential_on_small_graphs() {
        // Below the spawn threshold the partition runs inline, but the merge
        // arithmetic is the same; every count must agree with shards = 1.
        let graph = sample();
        let reference = LabelIndex::build_with_shards(&graph, 1);
        for shards in [2usize, 3, 8] {
            let index = LabelIndex::build_with_shards(&graph, shards);
            assert_eq!(index, reference, "shards={shards}");
            assert_eq!(index.snapshot(), reference.snapshot(), "shards={shards}");
        }
    }

    #[test]
    fn sharded_builds_match_sequential_above_the_spawn_threshold() {
        // 3 × PARALLEL_WORK_THRESHOLD nodes with interleaved label reuse: the
        // fan-out branch actually spawns, and chunk boundaries fall inside
        // label runs, so a merge that lost node order would be caught.
        let mut graph = DataGraph::new();
        let n = 3 * PARALLEL_WORK_THRESHOLD;
        for v in 0..n {
            if v % 7 == 3 {
                graph.add_node(Attributes::new().with("name", "anon"));
            } else {
                graph.add_labeled_node(format!("l{}", v % 5));
            }
        }
        let reference = LabelIndex::build_with_shards(&graph, 1);
        for shards in [2usize, 3, 8] {
            let index = LabelIndex::build_with_shards(&graph, shards);
            assert_eq!(index, reference, "shards={shards}");
            for (label, nodes) in reference.buckets() {
                assert_eq!(index.nodes_with_label(label), nodes, "bucket {label}");
                assert!(nodes.windows(2).all(|w| w[0] < w[1]), "bucket {label} not sorted");
            }
        }
    }

    #[test]
    fn predicate_domain_triages_by_label_atom() {
        use crate::attr::CompareOp;
        use crate::predicate::Predicate;
        let index = LabelIndex::build(&sample());
        assert_eq!(
            index.predicate_domain(&Predicate::label("CTO")),
            CandidateDomain::Bucket(&[NodeId(0), NodeId(2)])
        );
        assert_eq!(
            index.predicate_domain(&Predicate::label("CTO").and("age", CompareOp::Lt, 50)),
            CandidateDomain::FilteredBucket(&[NodeId(0), NodeId(2)])
        );
        assert_eq!(
            index.predicate_domain(&Predicate::any().and_eq("name", "anon")),
            CandidateDomain::AllNodes
        );
        assert_eq!(index.predicate_domain(&Predicate::any()), CandidateDomain::AllNodes);
        // A missing label maps to the empty bucket, not AllNodes.
        assert_eq!(
            index.predicate_domain(&Predicate::label("Ghost")),
            CandidateDomain::Bucket(&[])
        );
    }

    #[test]
    fn ensure_node_capacity_absorbs_appended_nodes() {
        let mut graph = sample();
        let mut grown = LabelIndex::build(&graph);
        graph.add_labeled_node("CTO");
        graph.add_node(Attributes::new().with("name", "late-anon"));
        graph.add_labeled_node("Ops");
        grown.ensure_node_capacity(&graph);
        // Growth must land on exactly the index a fresh build produces.
        assert_eq!(grown, LabelIndex::build(&graph));
        assert_eq!(grown.nodes_with_label("CTO"), &[NodeId(0), NodeId(2), NodeId(5)]);
        assert_eq!(grown.nodes_with_label("Ops"), &[NodeId(7)]);
        assert_eq!(grown.unlabeled_nodes(), &[NodeId(3), NodeId(6)]);
        assert_eq!(grown.covered_nodes(), 8);
        // Idempotent when nothing grew.
        let before = grown.clone();
        grown.ensure_node_capacity(&graph);
        assert_eq!(grown, before);
    }
}
