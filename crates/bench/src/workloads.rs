//! Workload builders shared by the `experiments` binary and the Criterion
//! benches.
//!
//! Every workload follows Section 8.1/8.2 of the paper:
//!
//! * the **YouTube** and **Citation** datasets are replaced by seeded
//!   generators with the same size and attribute schema
//!   (`igpm-generator::{youtube, citation}`, see `DESIGN.md` §4);
//! * **synthetic** graphs follow the densification law;
//! * patterns come from the `(|V_p|, |E_p|, |pred|, k)` generator;
//! * updates are degree-biased or reconstructed from timestamp snapshots.
//!
//! All sizes are multiplied by a single `scale` factor so the full paper-scale
//! experiment (`scale = 1.0`) and a laptop-quick smoke run (`scale = 0.05`)
//! use exactly the same code paths.

use igpm_generator::{
    citation_like, degree_biased_deletions, degree_biased_insertions, generate_pattern,
    mixed_batch, synthetic_graph, youtube_like, CitationConfig, PatternGenConfig, PatternShape,
    SyntheticConfig, UpdateGenConfig, YouTubeConfig,
};
use igpm_graph::{BatchUpdate, DataGraph, Pattern};

/// Default scale used when none is given on the command line: large enough to
/// show the crossovers, small enough for a two-core CI box.
pub const DEFAULT_SCALE: f64 = 0.10;

/// The YouTube-like dataset at the given scale (scale 1.0 ≈ 14 829 nodes /
/// 58 901 edges, the size reported in Section 8.1).
pub fn youtube(scale: f64) -> DataGraph {
    youtube_like(&YouTubeConfig::scaled(scale, 0x59_54))
}

/// The Citation-like dataset at the given scale (scale 1.0 ≈ 17 292 nodes /
/// 61 351 edges).
pub fn citation(scale: f64) -> DataGraph {
    citation_like(&CitationConfig::scaled(scale, 0x43_49))
}

/// A synthetic graph with `nodes` nodes and `edges` edges (already scaled by
/// the caller), 8 labels, fixed seed.
pub fn synthetic(nodes: usize, edges: usize, seed: u64) -> DataGraph {
    synthetic_graph(&SyntheticConfig::new(nodes.max(8), edges.max(16), 8, seed))
}

/// A b-pattern with the paper's `(|V_p|, |E_p|, |pred|, k)` parameters, seeded
/// from the given data graph so its predicates are satisfiable.
pub fn bounded_pattern(
    graph: &DataGraph,
    nodes: usize,
    edges: usize,
    preds: usize,
    k: u32,
    seed: u64,
) -> Pattern {
    generate_pattern(graph, &PatternGenConfig::new(nodes, edges, preds, k, seed))
}

/// A DAG b-pattern (required by `IncBMatchm`).
pub fn dag_bounded_pattern(
    graph: &DataGraph,
    nodes: usize,
    edges: usize,
    preds: usize,
    k: u32,
    seed: u64,
) -> Pattern {
    generate_pattern(
        graph,
        &PatternGenConfig::new(nodes, edges, preds, k, seed).with_shape(PatternShape::Dag),
    )
}

/// A normal pattern (all bounds 1) for the simulation / isomorphism experiments.
pub fn normal_pattern(
    graph: &DataGraph,
    nodes: usize,
    edges: usize,
    preds: usize,
    seed: u64,
) -> Pattern {
    generate_pattern(graph, &PatternGenConfig::normal(nodes, edges, preds, seed))
}

/// Degree-biased insertions, as in Section 8.2.
pub fn insertions(graph: &DataGraph, count: usize, seed: u64) -> BatchUpdate {
    degree_biased_insertions(graph, UpdateGenConfig::new(count, seed))
}

/// Degree-biased deletions, as in Section 8.2.
pub fn deletions(graph: &DataGraph, count: usize, seed: u64) -> BatchUpdate {
    degree_biased_deletions(graph, UpdateGenConfig::new(count, seed))
}

/// Scales an absolute count from the paper by `scale`, keeping at least `min`.
pub fn scaled(count: usize, scale: f64, min: usize) -> usize {
    ((count as f64 * scale).round() as usize).max(min)
}

/// The fig18-style workload of the `incsim_bench` shard-scaling sweep: a
/// densification-law synthetic graph, a generated normal DAG pattern
/// (10 nodes / 15 edges, like the headline comparison) and one large
/// degree-biased mixed batch. Sized by the caller — the sweep uses a larger
/// graph and batch than the headline comparison so the sharded drain rounds
/// carry enough pending work to cross the thread-spawn threshold.
pub fn batch_scaling_workload(
    nodes: usize,
    edges: usize,
    batch_size: usize,
    seed: u64,
) -> (DataGraph, Pattern, BatchUpdate) {
    let graph = synthetic_graph(&SyntheticConfig::new(nodes, edges, 6, seed));
    let pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(10, 15, 1, seed + 7).with_shape(PatternShape::Dag),
    );
    let batch = mixed_batch(&graph, batch_size / 2, batch_size / 2, seed + 13);
    (graph, pattern, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datasets_scale() {
        let g = youtube(0.01);
        assert!(g.node_count() >= 100);
        let c = citation(0.01);
        assert!(c.node_count() >= 100);
        let s = synthetic(500, 1500, 3);
        assert_eq!(s.node_count(), 500);
        assert_eq!(s.edge_count(), 1500);
    }

    #[test]
    fn patterns_have_requested_shape() {
        let g = youtube(0.01);
        let p = bounded_pattern(&g, 4, 6, 3, 3, 1);
        assert_eq!(p.node_count(), 4);
        assert_eq!(p.edge_count(), 6);
        assert!(dag_bounded_pattern(&g, 4, 6, 3, 3, 2).is_dag());
        assert!(normal_pattern(&g, 4, 6, 3, 3).is_normal());
    }

    #[test]
    fn update_workloads_have_requested_sizes() {
        let g = synthetic(300, 900, 5);
        assert_eq!(insertions(&g, 50, 6).len(), 50);
        assert_eq!(deletions(&g, 50, 7).len(), 50);
        assert_eq!(scaled(1000, 0.1, 10), 100);
        assert_eq!(scaled(10, 0.001, 5), 5);
    }

    #[test]
    fn batch_scaling_workload_is_seeded_and_sized() {
        let (g, p, batch) = batch_scaling_workload(1_000, 4_000, 600, 0x5c);
        assert_eq!(g.node_count(), 1_000);
        assert!(p.is_normal() && p.is_dag());
        assert_eq!(batch.len(), 600);
        let (g2, _, batch2) = batch_scaling_workload(1_000, 4_000, 600, 0x5c);
        assert_eq!(g, g2, "same seed, same workload");
        assert_eq!(batch, batch2);
    }
}
