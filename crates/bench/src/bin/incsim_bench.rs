//! Machine-readable incremental-simulation benchmark.
//!
//! Compares the counter-backed [`SimulationIndex`] against the frozen
//! pre-optimisation hash-set engine ([`LegacySimulationIndex`]) **in the same
//! run**, on a Fig. 18-style synthetic workload (densification-law graph,
//! degree-biased updates), and writes the results to `BENCH_incsim.json` so
//! the performance trajectory of the incremental core is tracked from this
//! change onward (see `BENCHMARKS.md`).
//!
//! ```text
//! cargo run --release -p igpm-bench --bin incsim_bench
//! cargo run --release -p igpm-bench --bin incsim_bench -- --nodes 20000 --out BENCH_incsim.json
//! ```
//!
//! Two unit-update streams are measured:
//!
//! * **maintenance** — degree-biased updates filtered, by live replay, to the
//!   ones `minDelta` classifies as relevant (`ss` deletions / `cs`+`cc`
//!   insertions, in alternating blocks). These are the updates on which
//!   `IncMatch±` actually runs its propagation — the cost the counter rewrite
//!   targets.
//! * **mixed** — the raw degree-biased stream, most of which `minDelta`
//!   discards in O(1). It bounds the constant per-update overhead, including
//!   the counter-upkeep tax the optimised engine pays on updates whose target
//!   matches something (legacy does nothing there).
//!
//! For each stream, two statistics are reported per engine (see
//! `BENCHMARKS.md` for the full methodology):
//!
//! * **end-to-end latency** — the full `insert_edge`/`delete_edge` call,
//!   including the shared graph mutation both engines must perform;
//! * **maintenance cost** (the headline `speedup`) — the end-to-end time of a
//!   chunk minus the time the *same mutations* take on a bare `DataGraph`
//!   replica with no index attached (the legacy engine's replica deletes
//!   through the seed's linear path, matching what that engine pays). This
//!   isolates exactly the classification + auxiliary-structure upkeep +
//!   propagation work that `IncMatch±` adds on top of the graph, which is the
//!   code the counter rewrite replaces.
//!
//! Timing: chunks of 8 same-kind updates, both engines lockstep on each chunk
//! in alternating order, whole walk repeated 3× from fresh state keeping the
//! per-chunk minimum (timing noise is additive). Batch throughput (`IncMatch`
//! with `minDelta`) and the accumulated `|AFF|` are reported for both
//! engines; both engines are asserted to agree with a from-scratch
//! `match_simulation` before any number is written.
//!
//! The `batch` comparison pins the counter engine to **one shard** so its
//! trajectory stays comparable with the sequential engine of earlier runs.
//! Shard scaling is measured separately (`batch_scaling` in the report): the
//! same fig18-style workload scaled up (`--scaling-nodes`, `--scaling-edges`,
//! `--scaling-batch`) is applied at 1/2/4/8 shards, every run is asserted
//! bit-identical (matches *and* `AffStats`) to the 1-shard run, and
//! updates/sec per shard count plus the measuring host's available
//! parallelism land in the artifact — wall-clock scaling is only meaningful
//! where the host actually has cores to scale onto.
//!
//! The cold-start **build** follows the same policy: the `build` section
//! times `SimulationIndex::build` on the headline workload pinned to one
//! shard (the trajectory-comparable number), and `build_scaling` sweeps the
//! scaled-up workload's build over 1/2/4/8 shards — warmup first, samples
//! interleaved round-robin, `host_parallelism` recorded — asserting every
//! build bit-identical (masks, counters, build `AffStats`) to the 1-shard
//! build before any number is written.
//!
//! The `mutation_scaling` section sweeps the bare **graph mutation path** —
//! sharded `minDelta` net-effect reduction plus the two-pass sharded
//! `DataGraph` edge-map mutation, no matching work — over the same shard
//! counts and workload, asserting every run leaves a graph adjacency-identical
//! to the 1-shard run (see `BENCHMARKS.md`).
//!
//! The `scan_scaling` section sweeps the two stages sharded last: the
//! **candidate scan** (`LabelIndex` pass + candidate enumeration,
//! `candidate_scan` runs) on the scaling workload, and a **propCC-dominated
//! batch** (`prop_cc` runs — the scaled unboundedness gadget, whose whole
//! cost is the SCC-joint evaluation) so the propCC sharding is attributed
//! separately from the scan. Lists/matches/`AffStats` are asserted identical
//! to the 1-shard run before any number is written (see `BENCHMARKS.md`).
//!
//! The `durability` section measures what the write-ahead log of
//! [`DurableIndex`] adds to the batch path, per fsync policy (`always` /
//! `every_n=64` / `never`): the same stream of mixed batches is applied
//! through the bare in-memory engine and through a durable index with
//! checkpointing disabled, both pinned to one shard, and every durable run
//! is asserted to end in the same match relation before any number is
//! written. The section is ungated — fsync latency measures the host's
//! storage stack, not this codebase.
//!
//! The `delta` section prices ΔM emission. Tracking is inherent to the apply
//! path, so the baseline is the alternative a subscriber would otherwise
//! pay: materialising the full view every batch and diffing consecutive
//! views. The tracked delta is asserted equal to the view diff before any
//! number is written, and the insert-only monotone fast path is measured
//! separately (its `removed` side asserted empty).
//!
//! The `service` section prices the multi-pattern `MatchService` against N
//! independent single-pattern indexes fed the same stream, swept over
//! 1/16/256/1024 registered patterns: shared vs independent updates/s,
//! snapshot-read p99 and the interner's candidate-set dedup, every service
//! view asserted equal to its independent counterpart before any number is
//! written. Ungated — the speedup depends on pattern-pool overlap, which is
//! workload, not code.
//!
//! The `ingest` section prices the asynchronous ingestion front-end
//! ([`igpm_core::Ingest`]) under three open-loop arrival patterns (poisson /
//! bursty / saturated): sustained updates/s, submit→resolve latency (p50 and
//! p99), the coalescer's mean and max batch sizes, and how often producers hit
//! backpressure. Every run is asserted to converge to the synchronous control
//! before any number is written. Ungated — arrival pacing measures the host's
//! sleep granularity and scheduler, not this codebase (see `BENCHMARKS.md`).
//!
//! # Perf-regression gate (`--check-against`)
//!
//! `--check-against OLD.json` compares the freshly measured **1-shard-pinned**
//! `batch` and `build` sections against a previously committed artifact and
//! exits non-zero when a medium is slower than the committed number by more
//! than `--check-tolerance` (default 0.35 — generous, because hosted CI
//! runners are noisy co-tenants; see `BENCHMARKS.md` for the rationale). Only
//! the 1-shard sections are gated: they are the only numbers comparable
//! across hosts with different core counts.

use igpm_bench::harness::{median_ns, updates_per_sec};
use igpm_bench::legacy::LegacySimulationIndex;
use igpm_bench::workloads::batch_scaling_workload;
use igpm_core::{
    candidates_with_shards, match_simulation, AffStats, ApplyOutcome, DurableIndex, DurableOptions,
    Ingest, IngestOptions, MatchService, PatternId, SimulationIndex,
};
use igpm_generator::{
    degree_biased_deletions, degree_biased_insertions, generate_pattern, mixed_batch,
    synthetic_graph, PatternGenConfig, PatternShape, SyntheticConfig, UpdateGenConfig,
};
use igpm_graph::wal::FsyncPolicy;
use igpm_graph::{
    reduce_batch_sharded, BatchUpdate, DataGraph, JsonValue, MatchDelta, Pattern, ShardPlan, Update,
};
use std::time::{Duration, Instant};

struct Config {
    nodes: usize,
    edges: usize,
    labels: usize,
    unit_updates: usize,
    batch_size: usize,
    pattern_nodes: usize,
    pattern_edges: usize,
    shape: PatternShape,
    seed: u64,
    out: String,
    scaling_nodes: usize,
    scaling_edges: usize,
    scaling_batch: usize,
    check_against: Option<String>,
    check_tolerance: f64,
}

impl Default for Config {
    fn default() -> Self {
        // Fig. 18(a)-flavoured sizes, scaled to run in seconds: a
        // densification-law synthetic graph (average degree 6, like the
        // paper's |E| ≈ 4-6·|V| synthetic sweeps) and a generated normal DAG
        // pattern, large enough (10 nodes / 15 edges) that support checks are
        // non-trivial while the per-update masks stay two words.
        Config {
            nodes: 10_000,
            edges: 60_000,
            labels: 6,
            unit_updates: 600,
            batch_size: 2_000,
            pattern_nodes: 10,
            pattern_edges: 15,
            shape: PatternShape::Dag,
            seed: 0x18a,
            out: "BENCH_incsim.json".to_string(),
            // Scaling-sweep sizes: 4× the nodes and 10× the batch of the
            // headline comparison, so the sharded phases carry enough pending
            // work per round to engage the worker threads.
            scaling_nodes: 40_000,
            scaling_edges: 240_000,
            scaling_batch: 20_000,
            check_against: None,
            // Hosted runners are co-tenanted and frequency-drifty: 35% keeps
            // the gate quiet on noise while still catching real regressions
            // (an accidental O(deg) removal or a lost fast path shows up as
            // 2-10x, not 1.35x).
            check_tolerance: 0.35,
        }
    }
}

fn parse_args() -> Config {
    let mut config = Config::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut grab = |name: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{name} needs a value"))
                .parse::<usize>()
                .unwrap_or_else(|_| panic!("{name} needs a number"))
        };
        match arg.as_str() {
            "--nodes" => config.nodes = grab("--nodes"),
            "--edges" => config.edges = grab("--edges"),
            "--labels" => config.labels = grab("--labels"),
            "--unit-updates" => config.unit_updates = grab("--unit-updates"),
            "--batch-size" => config.batch_size = grab("--batch-size"),
            "--pattern-nodes" => config.pattern_nodes = grab("--pattern-nodes"),
            "--pattern-edges" => config.pattern_edges = grab("--pattern-edges"),
            "--shape" => {
                config.shape = match args.next().expect("--shape needs a value").as_str() {
                    "general" => PatternShape::General,
                    "dag" => PatternShape::Dag,
                    "tree" => PatternShape::Tree,
                    other => panic!("unknown shape {other}"),
                }
            }
            "--seed" => config.seed = grab("--seed") as u64,
            "--out" => config.out = args.next().expect("--out needs a path"),
            "--scaling-nodes" => config.scaling_nodes = grab("--scaling-nodes"),
            "--scaling-edges" => config.scaling_edges = grab("--scaling-edges"),
            "--scaling-batch" => config.scaling_batch = grab("--scaling-batch"),
            "--check-against" => {
                config.check_against = Some(args.next().expect("--check-against needs a path"))
            }
            "--check-tolerance" => {
                config.check_tolerance = args
                    .next()
                    .expect("--check-tolerance needs a value")
                    .parse::<f64>()
                    .expect("--check-tolerance needs a number (e.g. 0.35)")
            }
            other => panic!("unknown flag {other} (see crates/bench/src/bin/incsim_bench.rs)"),
        }
    }
    config
}

/// The raw degree-biased stream, interleaving insertions and deletions in
/// blocks of [`CHUNK`] (so the chunked timer always measures one kind).
fn mixed_stream(graph: &DataGraph, count: usize, seed: u64) -> Vec<Update> {
    let ins = degree_biased_insertions(graph, UpdateGenConfig::new(count / 2, seed));
    let del = degree_biased_deletions(graph, UpdateGenConfig::new(count / 2, seed + 1));
    let mut stream = Vec::with_capacity(count);
    let (mut i, mut d) = (ins.iter(), del.iter());
    'outer: loop {
        let mut emitted = false;
        for _ in 0..CHUNK {
            match i.next() {
                Some(u) => {
                    stream.push(*u);
                    emitted = true;
                }
                None => break,
            }
        }
        for _ in 0..CHUNK {
            match d.next() {
                Some(u) => {
                    stream.push(*u);
                    emitted = true;
                }
                None => break,
            }
        }
        if !emitted {
            break 'outer;
        }
    }
    stream
}

/// Builds a stream of `count` *relevant* unit updates — blocks of [`CHUNK`]
/// deletions alternating with blocks of insertions — by replaying
/// degree-biased candidates against a scratch index: relevant candidates of
/// the currently wanted kind are kept (and stay applied), everything else is
/// undone, so the replayed prefix state always equals `base + accepted
/// stream` and every acceptance-time classification stays valid on replay.
fn maintenance_stream(base: &DataGraph, pattern: &Pattern, count: usize, seed: u64) -> Vec<Update> {
    let mut graph = base.clone();
    let mut index = SimulationIndex::build(pattern, &graph);
    let mut accepted: Vec<Update> = Vec::new();
    let mut in_block = 0u128;
    let mut want_delete = true;
    let mut round = 0u64;
    while accepted.len() < count && round < 400 {
        round += 1;
        let candidates: Vec<Update> = mixed_stream(&graph, 200, seed + round * 1000);
        for update in candidates {
            if accepted.len() >= count {
                break;
            }
            let (a, b) = update.endpoints();
            if update.is_delete() != want_delete {
                continue;
            }
            let stats = if update.is_insert() {
                index.insert_edge(&mut graph, a, b).stats
            } else {
                index.delete_edge(&mut graph, a, b).stats
            };
            if stats.delta_g == 1 && stats.reduced_delta_g == 1 {
                accepted.push(update);
                in_block += 1;
                if in_block == CHUNK {
                    in_block = 0;
                    want_delete = !want_delete;
                }
            } else {
                // Irrelevant (or no-op): undo so the scratch state matches
                // base + accepted updates exactly.
                let (ia, ib) = update.inverse().endpoints();
                if update.is_insert() {
                    index.delete_edge(&mut graph, ia, ib);
                } else {
                    index.insert_edge(&mut graph, ia, ib);
                }
            }
        }
    }
    assert!(!accepted.is_empty(), "could not find any relevant updates — pattern match is empty?");
    accepted
}

/// Size of the timed chunks: per-update `Instant` reads cost ~40-100 ns,
/// which would floor a few-hundred-ns latency comparison; timing runs of
/// consecutive same-kind updates and dividing amortises that overhead
/// (the same reason criterion batches its iterations).
const CHUNK: u128 = 8;

fn time_batch<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64() * 1e3, result)
}

fn obj(entries: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Divides accumulated [`AffStats`] by the number of identical replays.
fn scale_stats(stats: AffStats, reps: usize) -> AffStats {
    AffStats {
        delta_g: stats.delta_g / reps,
        reduced_delta_g: stats.reduced_delta_g / reps,
        matches_added: stats.matches_added / reps,
        matches_removed: stats.matches_removed / reps,
        aux_changes: stats.aux_changes / reps,
        nodes_visited: stats.nodes_visited / reps,
        counter_updates: stats.counter_updates / reps,
    }
}

struct UnitComparison {
    counter_median_ns: u128,
    legacy_median_ns: u128,
    /// Median per-update *maintenance* cost (total minus the bare graph
    /// mutation of the same chunk) per engine, and its paired speedup.
    counter_maint_ns: u128,
    legacy_maint_ns: u128,
    maintenance_speedup: f64,
    /// Median of the per-chunk paired end-to-end ratios (each chunk is one
    /// trial on which both engines ran back to back).
    paired_speedup: f64,
    counter_del_ns: u128,
    legacy_del_ns: u128,
    counter_ins_ns: u128,
    legacy_ins_ns: u128,
    speedup: f64,
    counter_aff: AffStats,
    legacy_aff: AffStats,
}

/// Runs both engines over the same unit stream from the same base state and
/// checks they land on the same (from-scratch-verified) match.
fn compare_unit_stream(
    name: &str,
    graph: &DataGraph,
    pattern: &Pattern,
    stream: &[Update],
) -> UnitComparison {
    let unit_step_counter = |index: &mut SimulationIndex, g: &mut DataGraph, update: &Update| {
        let (a, b) = update.endpoints();
        if update.is_insert() {
            index.insert_edge(g, a, b).stats
        } else {
            index.delete_edge(g, a, b).stats
        }
    };
    let unit_step_legacy =
        |index: &mut LegacySimulationIndex, g: &mut DataGraph, update: &Update| {
            let (a, b) = update.endpoints();
            if update.is_insert() {
                index.insert_edge(g, a, b)
            } else {
                index.delete_edge(g, a, b)
            }
        };

    // Lockstep: both engines replay the same stream chunk by chunk, timed
    // back to back, so CPU frequency drift and co-tenant noise hit both
    // engines on the same chunk rather than on different halves of the run.
    // The whole walk is repeated REPS times from fresh state and each chunk
    // keeps its *minimum* per engine — timing noise is strictly additive, so
    // min-of-reps is the best estimate of the true chunk cost.
    const REPS: usize = 3;
    // Per rep: (per-chunk counter ns, per-chunk legacy ns, per-chunk kind).
    let mut chunk_counter: Vec<u128> = Vec::new();
    let mut chunk_legacy: Vec<u128> = Vec::new();
    let mut chunk_fast: Vec<u128> = Vec::new();
    let mut chunk_linear: Vec<u128> = Vec::new();
    let mut chunk_kind: Vec<(bool, usize)> = Vec::new(); // (is_delete, chunk_len)
    let mut counter_aff = AffStats::default();
    let mut legacy_aff = AffStats::default();
    let mut final_graph = graph.clone();
    for rep in 0..REPS {
        let mut counter_index = SimulationIndex::build(pattern, graph);
        let mut counter_graph = graph.clone();
        let mut legacy_index = LegacySimulationIndex::build(pattern, graph);
        let mut legacy_graph = graph.clone();
        // Bare graph replicas: the same mutations without any index, used to
        // subtract the shared mutation cost and isolate the *maintenance*
        // work. The legacy replica deletes through the seed's linear path,
        // matching what the legacy engine itself pays.
        let mut replica_fast = graph.clone();
        let mut replica_linear = graph.clone();
        let mut chunk_no = 0usize;
        let mut i = 0usize;
        while i < stream.len() {
            let is_delete = stream[i].is_delete();
            let mut end = i;
            while end < stream.len()
                && stream[end].is_delete() == is_delete
                && ((end - i) as u128) < CHUNK
            {
                end += 1;
            }
            let chunk = &stream[i..end];

            // Alternate which engine goes first so first-mover cache effects
            // cancel out across chunks.
            let counter_first = (chunk_no + rep).is_multiple_of(2);
            let mut time_counter = |c_aff: &mut AffStats| {
                let start = Instant::now();
                for update in chunk {
                    c_aff.merge(unit_step_counter(&mut counter_index, &mut counter_graph, update));
                }
                start.elapsed().as_nanos() / chunk.len() as u128
            };
            let mut time_legacy = |l_aff: &mut AffStats| {
                let start = Instant::now();
                for update in chunk {
                    l_aff.merge(unit_step_legacy(&mut legacy_index, &mut legacy_graph, update));
                }
                start.elapsed().as_nanos() / chunk.len() as u128
            };
            let (counter_per_update, legacy_per_update) = if counter_first {
                let c = time_counter(&mut counter_aff);
                let l = time_legacy(&mut legacy_aff);
                (c, l)
            } else {
                let l = time_legacy(&mut legacy_aff);
                let c = time_counter(&mut counter_aff);
                (c, l)
            };
            let start = Instant::now();
            for update in chunk {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    replica_fast.add_edge(a, b);
                } else {
                    replica_fast.remove_edge(a, b);
                }
            }
            let fast_per_update = start.elapsed().as_nanos() / chunk.len() as u128;
            let start = Instant::now();
            for update in chunk {
                let (a, b) = update.endpoints();
                if update.is_insert() {
                    replica_linear.add_edge(a, b);
                } else {
                    replica_linear.remove_edge_linear(a, b);
                }
            }
            let linear_per_update = start.elapsed().as_nanos() / chunk.len() as u128;
            if rep == 0 {
                chunk_counter.push(counter_per_update);
                chunk_legacy.push(legacy_per_update);
                chunk_fast.push(fast_per_update);
                chunk_linear.push(linear_per_update);
                chunk_kind.push((is_delete, chunk.len()));
            } else {
                chunk_counter[chunk_no] = chunk_counter[chunk_no].min(counter_per_update);
                chunk_legacy[chunk_no] = chunk_legacy[chunk_no].min(legacy_per_update);
                chunk_fast[chunk_no] = chunk_fast[chunk_no].min(fast_per_update);
                chunk_linear[chunk_no] = chunk_linear[chunk_no].min(linear_per_update);
            }
            chunk_no += 1;
            i = end;
        }
        assert_eq!(counter_graph, legacy_graph, "{name}: engines saw different graphs");
        if rep == 0 {
            final_graph = counter_graph;
        }
    }
    // AffStats accumulated over REPS identical replays: scale back to one.
    counter_aff = scale_stats(counter_aff, REPS);
    legacy_aff = scale_stats(legacy_aff, REPS);

    // Semantic check: a re-run of each engine must agree with from-scratch.
    let expected = match_simulation(pattern, &final_graph);
    let mut g = graph.clone();
    let mut check = SimulationIndex::build(pattern, &g);
    for u in stream {
        unit_step_counter(&mut check, &mut g, u);
    }
    assert_eq!(check.matches(), expected, "{name}: counter engine diverged");
    let mut g = graph.clone();
    let mut check = LegacySimulationIndex::build(pattern, &g);
    for u in stream {
        unit_step_legacy(&mut check, &mut g, u);
    }
    assert_eq!(check.matches(), expected, "{name}: legacy engine diverged");

    // Expand per-chunk minima to per-update samples and paired ratios. The
    // *maintenance* samples subtract the bare graph-mutation cost of the same
    // chunk (fast path for the counter engine, the seed's linear path for the
    // legacy engine), isolating classification + auxiliary-structure upkeep +
    // propagation — the work IncMatch± actually performs on top of the graph.
    let (mut c_del, mut c_ins, mut l_del, mut l_ins) =
        (Vec::new(), Vec::new(), Vec::new(), Vec::new());
    let (mut cm_all, mut lm_all) = (Vec::new(), Vec::new());
    let mut paired_ratios: Vec<f64> = Vec::new();
    let mut maint_ratios: Vec<f64> = Vec::new();
    for (chunk_no, &(is_delete, len)) in chunk_kind.iter().enumerate() {
        let c = chunk_counter[chunk_no];
        let l = chunk_legacy[chunk_no];
        let cm = c.saturating_sub(chunk_fast[chunk_no]).max(1);
        let lm = l.saturating_sub(chunk_linear[chunk_no]).max(1);
        for _ in 0..len {
            if is_delete {
                c_del.push(c);
                l_del.push(l);
            } else {
                c_ins.push(c);
                l_ins.push(l);
            }
            cm_all.push(cm);
            lm_all.push(lm);
        }
        paired_ratios.push(l as f64 / c.max(1) as f64);
        maint_ratios.push(lm as f64 / cm as f64);
    }

    let all_counter: Vec<u128> = c_del.iter().chain(c_ins.iter()).copied().collect();
    let all_legacy: Vec<u128> = l_del.iter().chain(l_ins.iter()).copied().collect();
    let counter_median_ns = median_ns(all_counter);
    let legacy_median_ns = median_ns(all_legacy);
    paired_ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let paired_speedup = paired_ratios.get(paired_ratios.len() / 2).copied().unwrap_or(1.0);
    maint_ratios.sort_unstable_by(|a, b| a.partial_cmp(b).expect("finite ratios"));
    let maintenance_paired = maint_ratios.get(maint_ratios.len() / 2).copied().unwrap_or(1.0);
    let counter_maint_ns = median_ns(cm_all);
    let legacy_maint_ns = median_ns(lm_all);
    let comparison = UnitComparison {
        counter_median_ns,
        legacy_median_ns,
        counter_maint_ns,
        legacy_maint_ns,
        maintenance_speedup: maintenance_paired,
        paired_speedup,
        counter_del_ns: median_ns(c_del),
        legacy_del_ns: median_ns(l_del),
        counter_ins_ns: median_ns(c_ins),
        legacy_ins_ns: median_ns(l_ins),
        speedup: legacy_median_ns as f64 / counter_median_ns.max(1) as f64,
        counter_aff,
        legacy_aff,
    };
    println!(
        "{name}: {} updates — end-to-end counter {} ns vs legacy {} ns ({:.2}x medians, \
         {:.2}x paired); maintenance {} ns vs {} ns ({:.2}x paired) \
         (del {}/{} ns, ins {}/{} ns)",
        stream.len(),
        comparison.counter_median_ns,
        comparison.legacy_median_ns,
        comparison.speedup,
        comparison.paired_speedup,
        comparison.counter_maint_ns,
        comparison.legacy_maint_ns,
        comparison.maintenance_speedup,
        comparison.counter_del_ns,
        comparison.legacy_del_ns,
        comparison.counter_ins_ns,
        comparison.legacy_ins_ns,
    );
    comparison
}

fn unit_json(c: &UnitComparison) -> JsonValue {
    obj(vec![
        ("counter_median_ns", JsonValue::Int(c.counter_median_ns as i64)),
        ("legacy_median_ns", JsonValue::Int(c.legacy_median_ns as i64)),
        ("speedup", JsonValue::Float(c.maintenance_speedup)),
        ("counter_maintenance_median_ns", JsonValue::Int(c.counter_maint_ns as i64)),
        ("legacy_maintenance_median_ns", JsonValue::Int(c.legacy_maint_ns as i64)),
        ("end_to_end_speedup", JsonValue::Float(c.paired_speedup)),
        ("end_to_end_speedup_of_medians", JsonValue::Float(c.speedup)),
        ("counter_delete_median_ns", JsonValue::Int(c.counter_del_ns as i64)),
        ("legacy_delete_median_ns", JsonValue::Int(c.legacy_del_ns as i64)),
        ("counter_insert_median_ns", JsonValue::Int(c.counter_ins_ns as i64)),
        ("legacy_insert_median_ns", JsonValue::Int(c.legacy_ins_ns as i64)),
        ("counter_total_aff", JsonValue::Int(c.counter_aff.aff() as i64)),
        ("legacy_total_aff", JsonValue::Int(c.legacy_aff.aff() as i64)),
        ("counter_total_delta_m", JsonValue::Int(c.counter_aff.delta_m() as i64)),
        ("legacy_total_delta_m", JsonValue::Int(c.legacy_aff.delta_m() as i64)),
        ("counter_updates", JsonValue::Int(c.counter_aff.counter_updates as i64)),
    ])
}

/// One measured point of the shard-scaling sweep.
struct ScalingRun {
    shards: usize,
    median_ns: u128,
    throughput: f64,
}

/// Times the cold-start `SimulationIndex` build on the headline workload,
/// pinned to **one shard** so the number stays comparable with the
/// sequential builds of earlier runs (shard scaling is measured separately
/// by [`build_scaling_sweep`]).
fn sequential_build_timing(graph: &DataGraph, pattern: &Pattern) -> u128 {
    // Warmup (allocator + caches), then median of 5.
    let _ = SimulationIndex::build_with_shards(pattern, graph, 1);
    let samples: Vec<u128> = (0..5)
        .map(|_| {
            let (ms, index) = time_batch(|| SimulationIndex::build_with_shards(pattern, graph, 1));
            assert!(index.pattern().node_count() > 0);
            (ms * 1e6) as u128
        })
        .collect();
    median_ns(samples)
}

/// Builds the scaled-up fig18-style workload's index at each shard count,
/// asserting every build bit-identical (masks, counters, cached matches and
/// build `AffStats`) to the 1-shard build before any number is reported.
/// Warmup first, then samples interleaved round-robin over the shard counts
/// so frequency drift and co-tenant noise hit every count equally.
fn build_scaling_sweep(graph: &DataGraph, pattern: &Pattern, config: &Config) -> Vec<ScalingRun> {
    let reference = SimulationIndex::build_with_shards(pattern, graph, 1);
    assert_eq!(
        reference.matches(),
        match_simulation(pattern, graph),
        "1-shard build diverged from from-scratch match_simulation"
    );
    let reference_aux = reference.aux_snapshot();
    let reference_stats = reference.build_stats();
    let mut times: Vec<Vec<u128>> = vec![Vec::with_capacity(SWEEP_SAMPLES); SHARD_SWEEP.len()];
    for _ in 0..SWEEP_SAMPLES {
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            let (ms, index) =
                time_batch(|| SimulationIndex::build_with_shards(pattern, graph, shards));
            times[i].push((ms * 1e6) as u128);
            assert_eq!(
                index.aux_snapshot(),
                reference_aux,
                "{shards}-shard build produced different masks/counters than the 1-shard build"
            );
            assert_eq!(
                index.build_stats(),
                reference_stats,
                "{shards}-shard build reported different AffStats than the 1-shard build"
            );
        }
    }
    let mut runs = Vec::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let median = median_ns(times[i].clone());
        // "Throughput" for a build is nodes indexed per second.
        let throughput = updates_per_sec(config.scaling_nodes, median);
        println!(
            "build_scaling (|V|={}, |E|={}): {shards} shard(s) — {:.3} ms ({:.0} nodes/s)",
            config.scaling_nodes,
            config.scaling_edges,
            median as f64 / 1e6,
            throughput,
        );
        runs.push(ScalingRun { shards, median_ns: median, throughput });
    }
    runs
}

/// Shard counts swept by both scaling sections, and samples per count.
const SHARD_SWEEP: [usize; 4] = [1, 2, 4, 8];
const SWEEP_SAMPLES: usize = 5;

/// Applies the scaled-up fig18-style batch at each shard count, asserting
/// every run bit-identical (matches and `AffStats`) to the 1-shard run
/// before any number is reported.
fn batch_scaling_sweep(
    graph: &DataGraph,
    pattern: &Pattern,
    batch: &BatchUpdate,
    scaling_nodes: usize,
) -> Vec<ScalingRun> {
    let mut updated = graph.clone();
    batch.apply(&mut updated);
    let expected = match_simulation(pattern, &updated);
    let base_index = SimulationIndex::build(pattern, graph);

    // Warm up caches/allocator once untimed, then interleave the samples
    // round-robin over the shard counts so frequency drift and co-tenant
    // noise hit every count equally rather than whichever ran first.
    {
        let mut g = graph.clone();
        base_index.clone().apply_batch_with_shards(&mut g, batch, 1);
    }
    let mut times: Vec<Vec<u128>> = vec![Vec::with_capacity(SWEEP_SAMPLES); SHARD_SWEEP.len()];
    let mut reference_outcome: Option<ApplyOutcome> = None;
    for _ in 0..SWEEP_SAMPLES {
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            let mut g = graph.clone();
            let mut index = base_index.clone();
            let (ms, outcome) = time_batch(|| index.apply_batch_with_shards(&mut g, batch, shards));
            times[i].push((ms * 1e6) as u128);
            assert_eq!(index.matches(), expected, "{shards}-shard run diverged from scratch");
            match &reference_outcome {
                None => reference_outcome = Some(outcome),
                Some(reference) => assert_eq!(
                    outcome, *reference,
                    "{shards}-shard run reported different AffStats/ΔM than the 1-shard run"
                ),
            }
        }
    }
    let mut runs = Vec::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let median = median_ns(times[i].clone());
        let throughput = updates_per_sec(batch.len(), median);
        println!(
            "batch_scaling ({} updates, |V|={}): {shards} shard(s) — {:.3} ms ({:.0}/s)",
            batch.len(),
            scaling_nodes,
            median as f64 / 1e6,
            throughput,
        );
        runs.push(ScalingRun { shards, median_ns: median, throughput });
    }
    runs
}

/// Sweeps the bare graph-mutation path — sharded `minDelta` net-effect
/// reduction plus the two-pass sharded `DataGraph` edge-map application, no
/// matching work — over the shard counts, asserting every run leaves a graph
/// **adjacency-identical** (list order included) to the 1-shard run before
/// any number is reported. Warmup first, then samples interleaved
/// round-robin over the shard counts.
fn mutation_scaling_sweep(graph: &DataGraph, batch: &BatchUpdate) -> Vec<ScalingRun> {
    let reference = {
        let plan = ShardPlan::new(graph.node_count(), 1);
        let (effective, _) = reduce_batch_sharded(graph, batch, plan);
        let mut g = graph.clone();
        g.apply_reduced_batch_sharded(&effective, plan);
        g.assert_edge_index_consistent();
        g
    };
    // Warmup (allocator + caches) once untimed.
    {
        let plan = ShardPlan::new(graph.node_count(), SHARD_SWEEP[SHARD_SWEEP.len() - 1]);
        let (effective, _) = reduce_batch_sharded(graph, batch, plan);
        let mut g = graph.clone();
        g.apply_reduced_batch_sharded(&effective, plan);
    }
    let mut times: Vec<Vec<u128>> = vec![Vec::with_capacity(SWEEP_SAMPLES); SHARD_SWEEP.len()];
    for _ in 0..SWEEP_SAMPLES {
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            let mut g = graph.clone();
            let plan = ShardPlan::new(g.node_count(), shards);
            let (ms, applied) = time_batch(|| {
                let (effective, _) = reduce_batch_sharded(&g, batch, plan);
                g.apply_reduced_batch_sharded(&effective, plan)
            });
            times[i].push((ms * 1e6) as u128);
            assert!(applied > 0, "scaling batch reduced to nothing");
            assert!(
                g.identical_to(&reference),
                "{shards}-shard mutation left a different graph than the 1-shard run"
            );
        }
    }
    let mut runs = Vec::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let median = median_ns(times[i].clone());
        let throughput = updates_per_sec(batch.len(), median);
        println!(
            "mutation_scaling ({} updates, |V|={}): {shards} shard(s) — {:.3} ms ({:.0}/s)",
            batch.len(),
            graph.node_count(),
            median as f64 / 1e6,
            throughput,
        );
        runs.push(ScalingRun { shards, median_ns: median, throughput });
    }
    runs
}

/// Sweeps the **candidate scan** — the sharded `LabelIndex` pass plus the
/// per-pattern-node candidate enumeration (`candidates_with_shards`), the
/// cold-start stage this change parallelised — over the shard counts,
/// asserting every run's lists identical to the 1-shard scan before any
/// number is reported. Warmup first, samples interleaved round-robin.
fn scan_scaling_sweep(graph: &DataGraph, pattern: &Pattern) -> Vec<ScalingRun> {
    let reference = candidates_with_shards(pattern, graph, 1);
    let total: usize = reference.iter().map(Vec::len).sum();
    assert!(total > 0, "scan-scaling pattern has no candidates");
    // Warmup (allocator + caches) once untimed at the widest count.
    let _ = candidates_with_shards(pattern, graph, SHARD_SWEEP[SHARD_SWEEP.len() - 1]);
    let mut times: Vec<Vec<u128>> = vec![Vec::with_capacity(SWEEP_SAMPLES); SHARD_SWEEP.len()];
    for _ in 0..SWEEP_SAMPLES {
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            let (ms, lists) = time_batch(|| candidates_with_shards(pattern, graph, shards));
            times[i].push((ms * 1e6) as u128);
            assert_eq!(
                lists, reference,
                "{shards}-shard candidate scan produced different lists than the 1-shard scan"
            );
        }
    }
    let mut runs = Vec::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let median = median_ns(times[i].clone());
        // Throughput for a scan is nodes scanned per second (the label-index
        // pass walks every node once).
        let throughput = updates_per_sec(graph.node_count(), median);
        println!(
            "scan_scaling candidate_scan (|V|={}): {shards} shard(s) — {:.3} ms ({:.0} nodes/s)",
            graph.node_count(),
            median as f64 / 1e6,
            throughput,
        );
        runs.push(ScalingRun { shards, median_ns: median, throughput });
    }
    runs
}

/// Sweeps a **propCC-dominated batch** so the sharded SCC-joint evaluation is
/// attributed separately from the candidate scan: the unboundedness-gadget
/// worst case scaled up — two same-label chains of `nodes / 2` under a
/// two-node cycle pattern, the batch inserting the two bridge edges that
/// close the global cycle. `minDelta` keeps both insertions, absorption and
/// the propCS drain see two seeds, and then `propCC` tentatively evaluates
/// (and promotes) *every* node — the batch cost is the joint evaluation.
/// Every run is asserted bit-identical (matches and `AffStats`) to the
/// 1-shard run before any number is reported.
fn prop_cc_scaling_sweep(nodes: usize) -> Vec<ScalingRun> {
    let half = (nodes / 2).max(2);
    let mut graph = DataGraph::new();
    let chain: Vec<igpm_graph::NodeId> =
        (0..2 * half).map(|_| graph.add_labeled_node("a")).collect();
    for i in 0..half - 1 {
        graph.add_edge(chain[i], chain[i + 1]);
        graph.add_edge(chain[half + i], chain[half + i + 1]);
    }
    let mut pattern = Pattern::new();
    let u1 = pattern.add_labeled_node("a");
    let u2 = pattern.add_labeled_node("a");
    pattern.add_normal_edge(u1, u2);
    pattern.add_normal_edge(u2, u1);
    let mut batch = BatchUpdate::new();
    batch.insert(chain[half - 1], chain[half]);
    batch.insert(chain[2 * half - 1], chain[0]);

    let base_index = SimulationIndex::build_with_shards(&pattern, &graph, 1);
    assert!(!base_index.is_match(), "the gadget must start unmatched");
    // Warmup once untimed, and freeze the 1-shard reference outcome.
    let (reference_matches, reference_stats) = {
        let mut g = graph.clone();
        let mut index = base_index.clone();
        let stats = index.apply_batch_with_shards(&mut g, &batch, 1);
        assert!(index.is_match(), "closing the cycle must match every node");
        (index.matches(), stats)
    };
    let mut times: Vec<Vec<u128>> = vec![Vec::with_capacity(SWEEP_SAMPLES); SHARD_SWEEP.len()];
    for _ in 0..SWEEP_SAMPLES {
        for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
            let mut g = graph.clone();
            let mut index = base_index.clone();
            let (ms, stats) = time_batch(|| index.apply_batch_with_shards(&mut g, &batch, shards));
            times[i].push((ms * 1e6) as u128);
            assert_eq!(stats, reference_stats, "{shards}-shard propCC AffStats diverged");
            assert_eq!(index.matches(), reference_matches, "{shards}-shard propCC diverged");
        }
    }
    let mut runs = Vec::new();
    for (i, &shards) in SHARD_SWEEP.iter().enumerate() {
        let median = median_ns(times[i].clone());
        // Throughput is candidates jointly evaluated per second: propCC
        // tentatively evaluates all 2·half nodes for both pattern nodes.
        let throughput = updates_per_sec(2 * half, median);
        println!(
            "scan_scaling prop_cc (|V|={}): {shards} shard(s) — {:.3} ms ({:.0} candidates/s)",
            2 * half,
            median as f64 / 1e6,
            throughput,
        );
        runs.push(ScalingRun { shards, median_ns: median, throughput });
    }
    runs
}

/// Measures what write-ahead logging adds to the batch path, per fsync
/// policy: a stream of mixed batches is applied once through the bare
/// in-memory `SimulationIndex` (1 shard) and once through a
/// [`DurableIndex`] under each [`FsyncPolicy`] with checkpointing disabled,
/// so the difference is exactly the WAL append (+ sync) cost. Every durable
/// run is asserted to end in the same match relation as the in-memory run
/// before any number is reported. Ungated: fsync latency is a property of
/// the host's storage stack, not of this codebase.
fn durability_sweep(graph: &DataGraph, pattern: &Pattern, seed: u64) -> JsonValue {
    let batch_count = 32usize;
    let per_batch = 250usize;
    let samples = 3usize;

    // A sequentially valid stream: each batch generated against (and applied
    // to) the graph its predecessors left behind.
    let mut stream: Vec<BatchUpdate> = Vec::with_capacity(batch_count);
    {
        let mut g = graph.clone();
        for i in 0..batch_count {
            let batch = mixed_batch(&g, per_batch / 2, per_batch / 2, seed + i as u64);
            batch.apply(&mut g);
            stream.push(batch);
        }
    }

    // Bare in-memory baseline.
    let mut base_samples = Vec::with_capacity(samples);
    let mut expected = None;
    for _ in 0..samples {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(pattern, &g);
        let start = Instant::now();
        for batch in &stream {
            index.try_apply_batch_with_shards(&mut g, batch, 1).expect("stream is valid");
        }
        base_samples.push(start.elapsed().as_nanos());
        expected = Some(index.matches());
    }
    let base_ns = median_ns(base_samples);
    let expected = expected.expect("at least one sample");
    println!(
        "durability in-memory baseline ({batch_count} batches × {per_batch}): {:.3} ms",
        base_ns as f64 / 1e6
    );

    let policies: [(&str, FsyncPolicy); 3] = [
        ("always", FsyncPolicy::Always),
        ("every_n=64", FsyncPolicy::EveryN(64)),
        ("never", FsyncPolicy::Never),
    ];
    let mut policy_rows = Vec::new();
    for (name, policy) in policies {
        let mut policy_samples = Vec::with_capacity(samples);
        let mut wal_bytes = 0u64;
        for sample in 0..samples {
            let dir = std::env::temp_dir()
                .join(format!("igpm-bench-durability-{}-{name}-{sample}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let opts = DurableOptions {
                fsync: policy,
                checkpoint_every: 0,
                keep_checkpoints: 2,
                shards: 1,
                delta_buffer: 1024,
            };
            let mut durable: DurableIndex<SimulationIndex> =
                DurableIndex::open(dir.clone(), pattern, graph, opts).expect("open durable dir");
            let start = Instant::now();
            for batch in &stream {
                durable.apply(batch).expect("stream is valid");
            }
            policy_samples.push(start.elapsed().as_nanos());
            assert_eq!(
                durable.try_matches().expect("durable index readable"),
                expected,
                "durable run ({name}) diverged from the in-memory run"
            );
            wal_bytes = std::fs::read_dir(&dir)
                .expect("durability dir readable")
                .filter_map(|e| e.ok())
                .filter(|e| {
                    let name = e.file_name();
                    let name = name.to_string_lossy();
                    name.starts_with("wal-") && name.ends_with(".log")
                })
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum();
            let _ = std::fs::remove_dir_all(&dir);
        }
        let policy_ns = median_ns(policy_samples);
        let overhead = policy_ns as f64 / base_ns.max(1) as f64;
        println!(
            "durability fsync={name}: {:.3} ms ({overhead:.2}x in-memory, {wal_bytes} WAL bytes)",
            policy_ns as f64 / 1e6
        );
        policy_rows.push(obj(vec![
            ("policy", JsonValue::Str(name.to_string())),
            ("median_ms", JsonValue::Float(policy_ns as f64 / 1e6)),
            ("overhead_vs_in_memory", JsonValue::Float(overhead)),
            ("wal_bytes", JsonValue::Int(wal_bytes as i64)),
        ]));
    }

    obj(vec![
        (
            "workload",
            obj(vec![
                ("batches", JsonValue::Int(batch_count as i64)),
                ("updates_per_batch", JsonValue::Int(per_batch as i64)),
                ("shards", JsonValue::Int(1)),
                ("seed", JsonValue::Int(seed as i64)),
            ]),
        ),
        ("in_memory_median_ms", JsonValue::Float(base_ns as f64 / 1e6)),
        ("policies", JsonValue::Array(policy_rows)),
    ])
}

/// Measures delta emission. Tracking is inherent to the apply path (every
/// batch returns its `MatchDelta`), so the honest baseline is not "apply
/// without deltas" — it is the alternative a subscriber would otherwise pay:
/// materialising the full view each batch and diffing consecutive views.
/// The sweep times both over the same stream, cross-checks that the tracked
/// delta equals the view diff before any number is written, and measures the
/// monotone insert-only fast path separately.
fn delta_sweep(graph: &DataGraph, pattern: &Pattern, seed: u64) -> JsonValue {
    let batch_count = 32usize;
    let per_batch = 250usize;
    let samples = 3usize;

    // Sequentially valid streams: each batch generated against (and applied
    // to) the graph its predecessors left behind.
    let build_stream = |insertions: usize, deletions: usize, seed: u64| {
        let mut g = graph.clone();
        let mut stream: Vec<BatchUpdate> = Vec::with_capacity(batch_count);
        for i in 0..batch_count {
            let batch = mixed_batch(&g, insertions, deletions, seed + i as u64);
            batch.apply(&mut g);
            stream.push(batch);
        }
        stream
    };
    let mixed_stream = build_stream(per_batch / 2, per_batch / 2, seed);
    let insert_stream = build_stream(per_batch, 0, seed + 0x1000);

    // Tracked path: the delta rides along on the ordinary apply.
    let mut tracked_samples = Vec::with_capacity(samples);
    let mut tracked_deltas: Vec<MatchDelta> = Vec::new();
    let mut pairs_inserted = 0u64;
    let mut pairs_removed = 0u64;
    for sample in 0..samples {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(pattern, &g);
        let start = Instant::now();
        let mut deltas = Vec::with_capacity(batch_count);
        for batch in &mixed_stream {
            let outcome =
                index.try_apply_batch_with_shards(&mut g, batch, 1).expect("stream is valid");
            deltas.push(outcome.delta);
        }
        tracked_samples.push(start.elapsed().as_nanos());
        if sample == 0 {
            pairs_inserted = deltas.iter().map(|d| d.inserted.len() as u64).sum();
            pairs_removed = deltas.iter().map(|d| d.removed.len() as u64).sum();
            tracked_deltas = deltas;
        }
    }
    let tracked_ns = median_ns(tracked_samples);

    // Diff path: what a consumer pays without the tracker — materialise the
    // full view each batch and diff it against the previous one.
    let mut diff_samples = Vec::with_capacity(samples);
    for sample in 0..samples {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(pattern, &g);
        let mut prev = index.matches();
        let start = Instant::now();
        let mut deltas = Vec::with_capacity(batch_count);
        for batch in &mixed_stream {
            index.try_apply_batch_with_shards(&mut g, batch, 1).expect("stream is valid");
            let next = index.matches();
            deltas.push(MatchDelta::between(&prev, &next));
            prev = next;
        }
        diff_samples.push(start.elapsed().as_nanos());
        if sample == 0 {
            assert_eq!(deltas, tracked_deltas, "tracked ΔM diverged from the view diff");
        }
    }
    let diff_ns = median_ns(diff_samples);
    let overhead = tracked_ns as f64 / diff_ns.max(1) as f64;
    println!(
        "delta ({batch_count} batches × {per_batch} mixed): tracked {:.3} ms, view-diff {:.3} ms \
         ({overhead:.2}x, +{pairs_inserted}/-{pairs_removed} pairs)",
        tracked_ns as f64 / 1e6,
        diff_ns as f64 / 1e6
    );

    // Monotone fast path: insert-only batches skip removal tracking.
    let mut monotone_samples = Vec::with_capacity(samples);
    let mut monotone_inserted = 0u64;
    for sample in 0..samples {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(pattern, &g);
        let start = Instant::now();
        let mut inserted = 0u64;
        for batch in &insert_stream {
            let outcome =
                index.try_apply_batch_with_shards(&mut g, batch, 1).expect("stream is valid");
            assert!(outcome.delta.removed.is_empty(), "insert-only batch removed matches");
            inserted += outcome.delta.inserted.len() as u64;
        }
        monotone_samples.push(start.elapsed().as_nanos());
        if sample == 0 {
            monotone_inserted = inserted;
        }
    }
    let monotone_ns = median_ns(monotone_samples);
    println!(
        "delta monotone ({batch_count} insert-only batches × {per_batch}): {:.3} ms \
         (+{monotone_inserted} pairs)",
        monotone_ns as f64 / 1e6
    );

    obj(vec![
        (
            "workload",
            obj(vec![
                ("batches", JsonValue::Int(batch_count as i64)),
                ("updates_per_batch", JsonValue::Int(per_batch as i64)),
                ("shards", JsonValue::Int(1)),
                ("seed", JsonValue::Int(seed as i64)),
            ]),
        ),
        ("tracked_median_ms", JsonValue::Float(tracked_ns as f64 / 1e6)),
        ("view_diff_median_ms", JsonValue::Float(diff_ns as f64 / 1e6)),
        ("tracked_vs_view_diff", JsonValue::Float(overhead)),
        ("pairs_inserted", JsonValue::Int(pairs_inserted as i64)),
        ("pairs_removed", JsonValue::Int(pairs_removed as i64)),
        (
            "monotone",
            obj(vec![
                ("median_ms", JsonValue::Float(monotone_ns as f64 / 1e6)),
                ("pairs_inserted", JsonValue::Int(monotone_inserted as i64)),
            ]),
        ),
    ])
}

/// Prices the multi-pattern [`MatchService`] against the alternative it
/// replaces: N independent single-pattern indexes each paying their own
/// validation, minDelta reduction and graph mutation for every batch. One
/// fixed graph and update stream, swept over 1/16/256/1024 registered
/// patterns (drawn from one overlapping pool so the candidate interner has
/// real sharing to exploit). Per pattern count the sweep reports
///
/// * shared-service wall time for the stream (registration excluded, like
///   the baseline's builds) and effective updates/s;
/// * the independent-indexes wall time for the same stream — built untimed,
///   applies timed engine by engine — and the resulting speedup;
/// * snapshot-read p99 (`matches(pattern_id)` round-robin over the handles);
/// * interned candidate sets vs total pattern nodes.
///
/// Every service view is asserted equal to its independent counterpart
/// before any number is written. Pinned to 1 shard so the per-update cost
/// curve is attributable to sharing, not thread scaling. Ungated: the
/// speedup depends on pattern-pool overlap, which is workload, not code.
fn service_sweep(seed: u64) -> JsonValue {
    const PATTERN_COUNTS: [usize; 4] = [1, 16, 256, 1024];
    const BATCH_COUNT: usize = 8;
    const PER_BATCH: usize = 200;
    const READS: usize = 4096;

    let graph = synthetic_graph(&SyntheticConfig::new(4_000, 16_000, 4, seed));
    let pool: Vec<Pattern> = (0..PATTERN_COUNTS[PATTERN_COUNTS.len() - 1])
        .map(|i| {
            let shape = if i % 2 == 0 { PatternShape::General } else { PatternShape::Dag };
            let nodes = 2 + (i % 3);
            generate_pattern(
                &graph,
                &PatternGenConfig::normal(nodes, nodes + 1, 1, seed + 100 + i as u64)
                    .with_shape(shape),
            )
        })
        .collect();

    // One sequentially valid stream shared by every configuration: each
    // batch generated against the graph its predecessors left behind.
    let mut stream: Vec<BatchUpdate> = Vec::with_capacity(BATCH_COUNT);
    {
        let mut g = graph.clone();
        for i in 0..BATCH_COUNT {
            let batch = mixed_batch(&g, PER_BATCH / 2, PER_BATCH / 2, seed + 0x300 + i as u64);
            batch.apply(&mut g);
            stream.push(batch);
        }
    }
    let stream_updates = BATCH_COUNT * PER_BATCH;

    let mut rows = Vec::new();
    for &count in &PATTERN_COUNTS {
        let patterns = &pool[..count];

        // Shared service: register all patterns (untimed), apply the stream.
        let mut service: MatchService<SimulationIndex> =
            MatchService::with_shards(graph.clone(), 1);
        let ids: Vec<PatternId> =
            patterns.iter().map(|p| service.register(p).expect("register")).collect();
        let interned = service.interned_candidate_sets();
        let start = Instant::now();
        for batch in &stream {
            service.apply(batch).expect("stream is valid");
        }
        let service_ns = start.elapsed().as_nanos();

        // Snapshot reads, round-robin over the registered handles.
        let mut read_ns: Vec<u128> = Vec::with_capacity(READS);
        for r in 0..READS {
            let id = ids[r % ids.len()];
            let start = Instant::now();
            let view = service.matches(id).expect("readable");
            read_ns.push(start.elapsed().as_nanos());
            std::hint::black_box(view);
        }
        read_ns.sort_unstable();
        let read_p99 = read_ns[(READS * 99) / 100 - 1];

        // Independent baseline: each pattern owns its index *and* its graph,
        // so it pays validation + reduction + mutation per pattern. Builds
        // and clones are untimed (the service's registrations were too).
        let mut baseline_ns = 0u128;
        for (i, pattern) in patterns.iter().enumerate() {
            let mut g = graph.clone();
            let mut index = SimulationIndex::build_with_shards(pattern, &g, 1);
            let start = Instant::now();
            for batch in &stream {
                index.try_apply_batch_with_shards(&mut g, batch, 1).expect("stream is valid");
            }
            baseline_ns += start.elapsed().as_nanos();
            assert_eq!(
                *service.matches(ids[i]).expect("readable"),
                index.matches(),
                "service diverged from independent index {i} at {count} patterns"
            );
        }

        let service_tput = updates_per_sec(stream_updates, service_ns);
        let baseline_tput = updates_per_sec(stream_updates, baseline_ns);
        let speedup = baseline_ns as f64 / service_ns.max(1) as f64;
        let total_nodes: usize = patterns.iter().map(Pattern::node_count).sum();
        println!(
            "service ({count} patterns): shared {:.3} ms ({:.0}/s), independent {:.3} ms \
             ({:.0}/s) ⇒ {speedup:.2}x; read p99 {:.1} µs; {interned} candidate sets for \
             {total_nodes} pattern nodes",
            service_ns as f64 / 1e6,
            service_tput,
            baseline_ns as f64 / 1e6,
            baseline_tput,
            read_p99 as f64 / 1e3,
        );
        rows.push(obj(vec![
            ("patterns", JsonValue::Int(count as i64)),
            ("shared_median_ms", JsonValue::Float(service_ns as f64 / 1e6)),
            ("shared_updates_per_sec", JsonValue::Float(service_tput)),
            ("independent_total_ms", JsonValue::Float(baseline_ns as f64 / 1e6)),
            ("independent_updates_per_sec", JsonValue::Float(baseline_tput)),
            ("speedup_vs_independent", JsonValue::Float(speedup)),
            ("read_p99_us", JsonValue::Float(read_p99 as f64 / 1e3)),
            ("interned_candidate_sets", JsonValue::Int(interned as i64)),
            ("pattern_nodes", JsonValue::Int(total_nodes as i64)),
        ]));
    }

    obj(vec![
        (
            "workload",
            obj(vec![
                ("nodes", JsonValue::Int(4_000)),
                ("edges", JsonValue::Int(16_000)),
                ("batches", JsonValue::Int(BATCH_COUNT as i64)),
                ("updates_per_batch", JsonValue::Int(PER_BATCH as i64)),
                ("shards", JsonValue::Int(1)),
                ("seed", JsonValue::Int(seed as i64)),
            ]),
        ),
        ("runs", JsonValue::Array(rows)),
    ])
}

/// One splitmix64 step — deterministic arrival jitter without a rand
/// dependency (mirrors the generator crate's internal PRNG discipline).
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Prices the asynchronous ingestion front-end ([`Ingest`]) under three
/// open-loop arrival patterns — `poisson` (exponential inter-arrivals,
/// 200 µs mean), `bursty` (back-to-back bursts separated by gaps) and
/// `saturated` (a producer submitting as fast as the blocking queue
/// admits). One producer thread stamps each submission at the queue door;
/// a collector waits the tickets in FIFO order, so `submit_to_resolve`
/// latency covers queueing + coalescing + the sink's apply. Every run is
/// asserted to converge to the synchronous control — identical match view,
/// identical edge set (coalescing permutes the *order* net-effect reduction
/// mutates adjacency lists in, so graphs are compared as sets) — before any
/// number is written. Ungated: arrival pacing measures the host's sleep
/// granularity and scheduler as much as this codebase.
fn ingest_sweep(graph: &DataGraph, pattern: &Pattern, seed: u64) -> JsonValue {
    const SUBMISSIONS: usize = 512;
    const OPS_PER_SUBMISSION: usize = 4;
    const POISSON_MEAN_US: f64 = 200.0;
    const BURST_LEN: usize = 32;
    const BURST_GAP_MS: u64 = 2;

    // A sequentially valid stream of small submissions: each generated
    // against (and applied to) the graph its predecessors left behind, so
    // every strict submission passes per-submission validation.
    let mut stream: Vec<BatchUpdate> = Vec::with_capacity(SUBMISSIONS);
    {
        let mut g = graph.clone();
        for i in 0..SUBMISSIONS {
            let batch =
                mixed_batch(&g, OPS_PER_SUBMISSION / 2, OPS_PER_SUBMISSION / 2, seed + i as u64);
            batch.apply(&mut g);
            stream.push(batch);
        }
    }
    let total_ops: usize = stream.iter().map(BatchUpdate::len).sum();

    // Synchronous control: the same submissions applied one at a time.
    let mut control: MatchService<SimulationIndex> = MatchService::with_shards(graph.clone(), 1);
    let control_id = control.register(pattern).expect("register control pattern");
    for batch in &stream {
        control.apply(batch).expect("stream is valid");
    }
    let expected = control.matches(control_id).expect("control readable");
    let mut expected_edges: Vec<_> = control.graph().edges().collect();
    expected_edges.sort_unstable();

    // Queue capacity deliberately small so the saturated pattern actually
    // exercises backpressure; the paced patterns never fill it.
    let opts = IngestOptions { queue_capacity: 256, ..IngestOptions::default() };

    let mut rows = Vec::new();
    for arrival in ["poisson", "bursty", "saturated"] {
        let mut service: MatchService<SimulationIndex> =
            MatchService::with_shards(graph.clone(), 1);
        let pattern_id = service.register(pattern).expect("register pattern");
        let ingest = Ingest::spawn(service, opts);
        let handle = ingest.handle();
        let producer_stream = stream.clone();
        let (tickets_tx, tickets_rx) = std::sync::mpsc::channel();
        let mut rng = seed ^ 0xA5A5_5A5A_A5A5_5A5A;

        let start = Instant::now();
        let producer = std::thread::spawn(move || {
            for (i, batch) in producer_stream.into_iter().enumerate() {
                match arrival {
                    "poisson" => {
                        // Inverse-transform sample of Exp(1/mean); `1 - u`
                        // keeps the argument of ln strictly positive.
                        let u = (splitmix(&mut rng) >> 11) as f64 / (1u64 << 53) as f64;
                        let dt_us = -POISSON_MEAN_US * (1.0 - u).ln();
                        std::thread::sleep(Duration::from_nanos((dt_us * 1e3) as u64));
                    }
                    "bursty" if i > 0 && i % BURST_LEN == 0 => {
                        std::thread::sleep(Duration::from_millis(BURST_GAP_MS));
                    }
                    _ => {}
                }
                let submitted_at = Instant::now();
                let ticket = handle.submit(batch).expect("ingest accepts the stream");
                tickets_tx.send((submitted_at, ticket)).expect("collector alive");
            }
        });

        let mut latency_ns: Vec<u128> = Vec::with_capacity(SUBMISSIONS);
        for (submitted_at, ticket) in tickets_rx {
            let apply = ticket.wait().expect("strict stream commits");
            latency_ns.push(submitted_at.elapsed().as_nanos());
            std::hint::black_box(apply.seq);
        }
        producer.join().expect("producer thread");
        let wall_ns = start.elapsed().as_nanos();
        let stats = ingest.stats();
        let service = ingest.shutdown().expect("the sink survives a clean run");

        // Equivalence before any number is written.
        assert_eq!(latency_ns.len(), SUBMISSIONS, "every submission resolved ({arrival})");
        assert_eq!(stats.committed_ops, total_ops as u64, "every op committed ({arrival})");
        assert_eq!(stats.rejected_submissions, 0, "valid stream never rejected ({arrival})");
        assert_eq!(
            *service.matches(pattern_id).expect("ingested service readable"),
            *expected,
            "ingest ({arrival}) diverged from synchronous application"
        );
        let mut got_edges: Vec<_> = service.graph().edges().collect();
        got_edges.sort_unstable();
        assert_eq!(
            got_edges, expected_edges,
            "ingest ({arrival}) left a different edge set than synchronous application"
        );

        latency_ns.sort_unstable();
        let p50 = latency_ns[latency_ns.len() / 2];
        let p99 = latency_ns[(latency_ns.len() * 99) / 100 - 1];
        let tput = updates_per_sec(total_ops, wall_ns);
        let mean_coalesced = stats.committed_ops as f64 / stats.committed_batches.max(1) as f64;
        println!(
            "ingest {arrival}: {:.3} ms wall ({tput:.0}/s), submit→resolve p50 {:.1} µs / p99 \
             {:.1} µs, {} batches (mean {mean_coalesced:.1}, max {}), {} backpressure",
            wall_ns as f64 / 1e6,
            p50 as f64 / 1e3,
            p99 as f64 / 1e3,
            stats.committed_batches,
            stats.max_coalesced,
            stats.backpressure_events,
        );
        rows.push(obj(vec![
            ("arrival", JsonValue::Str(arrival.to_string())),
            ("wall_ms", JsonValue::Float(wall_ns as f64 / 1e6)),
            ("updates_per_sec", JsonValue::Float(tput)),
            ("submit_to_resolve_p50_us", JsonValue::Float(p50 as f64 / 1e3)),
            ("submit_to_resolve_p99_us", JsonValue::Float(p99 as f64 / 1e3)),
            ("committed_batches", JsonValue::Int(stats.committed_batches as i64)),
            ("mean_coalesced_ops", JsonValue::Float(mean_coalesced)),
            ("max_coalesced_ops", JsonValue::Int(stats.max_coalesced as i64)),
            ("backpressure_events", JsonValue::Int(stats.backpressure_events as i64)),
            ("final_adaptive_cap", JsonValue::Int(stats.current_cap as i64)),
        ]));
    }

    obj(vec![
        (
            "workload",
            obj(vec![
                ("submissions", JsonValue::Int(SUBMISSIONS as i64)),
                ("ops_per_submission", JsonValue::Int(OPS_PER_SUBMISSION as i64)),
                ("total_ops", JsonValue::Int(total_ops as i64)),
                ("queue_capacity", JsonValue::Int(opts.queue_capacity as i64)),
                ("min_batch", JsonValue::Int(opts.min_batch as i64)),
                ("max_batch", JsonValue::Int(opts.max_batch as i64)),
                ("burst_backlog", JsonValue::Int(opts.burst_backlog as i64)),
                ("poisson_mean_us", JsonValue::Float(POISSON_MEAN_US)),
                ("burst_len", JsonValue::Int(BURST_LEN as i64)),
                ("burst_gap_ms", JsonValue::Int(BURST_GAP_MS as i64)),
                ("seed", JsonValue::Int(seed as i64)),
            ]),
        ),
        ("runs", JsonValue::Array(rows)),
    ])
}

/// One gated metric of the perf-regression check: a lower-is-better median
/// read from `section.key` of both the fresh and the committed report.
const GATED_METRICS: [(&str, &str, &str); 2] = [
    ("batch", "counter_median_ms", "batch IncMatch, 1 shard"),
    ("build", "median_ms", "cold-start build, 1 shard"),
];

/// Compares the fresh report's 1-shard-pinned sections against a committed
/// artifact. Returns the failure messages (empty = gate passed).
///
/// A metric **fails** when `fresh > committed * (1 + tolerance)`. Metrics
/// missing from the *committed* file are skipped with a note (they appear
/// when a new section ships); metrics missing from the fresh report are a
/// bug and fail loudly.
fn regression_gate(fresh: &JsonValue, committed: &JsonValue, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for (section, key, label) in GATED_METRICS {
        let fresh_value = fresh
            .get(section)
            .and_then(|s| s.get(key))
            .and_then(JsonValue::as_f64)
            .unwrap_or_else(|| panic!("fresh report lacks {section}.{key}"));
        let Some(committed_value) =
            committed.get(section).and_then(|s| s.get(key)).and_then(JsonValue::as_f64)
        else {
            println!("check {label}: {section}.{key} absent from committed artifact — skipped");
            continue;
        };
        let limit = committed_value * (1.0 + tolerance);
        let ratio = fresh_value / committed_value.max(f64::MIN_POSITIVE);
        if fresh_value > limit {
            failures.push(format!(
                "{label}: {fresh_value:.3} ms vs committed {committed_value:.3} ms \
                 ({ratio:.2}x, tolerance {:.0}%)",
                tolerance * 100.0
            ));
            println!(
                "check {label}: FAIL ({fresh_value:.3} ms vs {committed_value:.3} ms, {ratio:.2}x)"
            );
        } else {
            println!(
                "check {label}: ok ({fresh_value:.3} ms vs {committed_value:.3} ms, {ratio:.2}x)"
            );
        }
    }
    failures
}

fn main() {
    let config = parse_args();
    // Load the committed artifact *before* the (minutes-long) measurement so
    // a bad path fails fast.
    let committed = config.check_against.as_ref().map(|path| {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|err| panic!("--check-against {path}: {err}"));
        JsonValue::parse(&text)
            .unwrap_or_else(|err| panic!("--check-against {path}: invalid JSON: {err}"))
    });
    println!(
        "# incsim_bench — |V|={}, |E|={}, {} labels, {} unit updates, batch {}",
        config.nodes, config.edges, config.labels, config.unit_updates, config.batch_size
    );

    let graph = synthetic_graph(&SyntheticConfig::new(
        config.nodes,
        config.edges,
        config.labels,
        config.seed,
    ));
    let pattern: Pattern = generate_pattern(
        &graph,
        &PatternGenConfig::normal(config.pattern_nodes, config.pattern_edges, 1, config.seed + 7)
            .with_shape(config.shape),
    );

    // --- Unit updates -----------------------------------------------------
    let maintenance = maintenance_stream(&graph, &pattern, config.unit_updates, config.seed + 11);
    let mixed = mixed_stream(&graph, config.unit_updates, config.seed + 17);
    let maintenance_cmp = compare_unit_stream("maintenance", &graph, &pattern, &maintenance);
    let mixed_cmp = compare_unit_stream("mixed", &graph, &pattern, &mixed);

    // --- Batch application ------------------------------------------------
    let batch: BatchUpdate =
        mixed_batch(&graph, config.batch_size / 2, config.batch_size / 2, config.seed + 13);
    let batch_samples = 5;
    let mut counter_batch_ms = Vec::new();
    let mut legacy_batch_ms = Vec::new();
    let mut counter_batch_aff = 0usize;
    let mut legacy_batch_aff = 0usize;
    let mut updated = graph.clone();
    batch.apply(&mut updated);
    let expected = match_simulation(&pattern, &updated);
    for _ in 0..batch_samples {
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        // One shard: keeps the trajectory comparable with the sequential
        // engine of earlier runs (shard scaling is measured separately below).
        let (ms, outcome) = time_batch(|| index.apply_batch_with_shards(&mut g, &batch, 1));
        counter_batch_ms.push((ms * 1e6) as u128);
        counter_batch_aff = outcome.stats.aff();
        assert_eq!(index.matches(), expected, "counter engine diverged on batch");

        let mut g = graph.clone();
        let mut legacy = LegacySimulationIndex::build(&pattern, &g);
        let (ms, stats) = time_batch(|| legacy.apply_batch(&mut g, &batch));
        legacy_batch_ms.push((ms * 1e6) as u128);
        legacy_batch_aff = stats.aff();
        assert_eq!(legacy.matches(), expected, "legacy engine diverged on batch");
    }
    let counter_batch_ns = median_ns(counter_batch_ms);
    let legacy_batch_ns = median_ns(legacy_batch_ms);
    let batch_speedup = legacy_batch_ns as f64 / counter_batch_ns.max(1) as f64;
    let counter_tput = config.batch_size as f64 / (counter_batch_ns as f64 / 1e9);
    let legacy_tput = config.batch_size as f64 / (legacy_batch_ns as f64 / 1e9);
    println!(
        "batch ({} updates): counter {:.3} ms ({:.0}/s), legacy {:.3} ms ({:.0}/s)  ⇒  {batch_speedup:.2}x",
        config.batch_size,
        counter_batch_ns as f64 / 1e6,
        counter_tput,
        legacy_batch_ns as f64 / 1e6,
        legacy_tput
    );

    // --- Shard scaling ----------------------------------------------------
    // One scaled-up workload shared by the batch and build sweeps.
    let (scaling_graph, scaling_pattern, scaling_batch) = batch_scaling_workload(
        config.scaling_nodes,
        config.scaling_edges,
        config.scaling_batch,
        config.seed + 0x5c,
    );
    let scaling =
        batch_scaling_sweep(&scaling_graph, &scaling_pattern, &scaling_batch, config.scaling_nodes);
    let mutation_scaling = mutation_scaling_sweep(&scaling_graph, &scaling_batch);
    let mutation_scaling_json = obj(vec![
        (
            "workload",
            obj(vec![
                ("nodes", JsonValue::Int(config.scaling_nodes as i64)),
                ("edges", JsonValue::Int(config.scaling_edges as i64)),
                ("batch_size", JsonValue::Int(config.scaling_batch as i64)),
                ("seed", JsonValue::Int((config.seed + 0x5c) as i64)),
            ]),
        ),
        ("host_parallelism", host_parallelism_json()),
        ("runs", scaling_runs_json(&mutation_scaling, "updates_per_sec")),
    ]);
    let scaling_json = obj(vec![
        (
            "workload",
            obj(vec![
                ("nodes", JsonValue::Int(config.scaling_nodes as i64)),
                ("edges", JsonValue::Int(config.scaling_edges as i64)),
                ("batch_size", JsonValue::Int(config.scaling_batch as i64)),
                ("seed", JsonValue::Int((config.seed + 0x5c) as i64)),
            ]),
        ),
        // Wall-clock scaling is bounded by the cores the measuring host
        // actually grants; record them so flat curves are attributable.
        ("host_parallelism", host_parallelism_json()),
        ("runs", scaling_runs_json(&scaling, "updates_per_sec")),
    ]);

    // --- Candidate scan + propCC scaling ----------------------------------
    // The two stages this change sharded, attributed separately — each run
    // table carries its *own* workload block, because they measure different
    // graphs: the scan runs on the random scaling workload, propCC on the
    // deterministic two-chain gadget.
    let scan_scaling = scan_scaling_sweep(&scaling_graph, &scaling_pattern);
    let prop_cc_scaling = prop_cc_scaling_sweep(config.scaling_nodes);
    let gadget_half = (config.scaling_nodes / 2).max(2);
    let scan_scaling_json = obj(vec![
        ("host_parallelism", host_parallelism_json()),
        (
            "candidate_scan",
            obj(vec![
                (
                    "workload",
                    obj(vec![
                        ("nodes", JsonValue::Int(config.scaling_nodes as i64)),
                        ("edges", JsonValue::Int(config.scaling_edges as i64)),
                        ("seed", JsonValue::Int((config.seed + 0x5c) as i64)),
                    ]),
                ),
                ("runs", scaling_runs_json(&scan_scaling, "nodes_per_sec")),
            ]),
        ),
        (
            "prop_cc",
            obj(vec![
                (
                    "workload",
                    obj(vec![
                        ("gadget", JsonValue::Str("two-chain unboundedness cycle".to_string())),
                        ("nodes", JsonValue::Int(2 * gadget_half as i64)),
                        ("edges", JsonValue::Int(2 * (gadget_half as i64 - 1))),
                        ("batch_size", JsonValue::Int(2)),
                    ]),
                ),
                ("runs", scaling_runs_json(&prop_cc_scaling, "candidates_per_sec")),
            ]),
        ),
    ]);

    // --- Cold-start build -------------------------------------------------
    let build_ns = sequential_build_timing(&graph, &pattern);
    println!(
        "build (|V|={}, |E|={}): {:.3} ms at 1 shard",
        config.nodes,
        config.edges,
        build_ns as f64 / 1e6
    );
    // --- Durability: WAL-append overhead per fsync policy ------------------
    let durability_json = durability_sweep(&graph, &pattern, config.seed + 0xd0);

    // --- Delta emission: tracked ΔM vs view diff, monotone fast path -------
    let delta_json = delta_sweep(&graph, &pattern, config.seed + 0xde);

    // --- Multi-pattern service: shared classification vs N independents ----
    let service_json = service_sweep(config.seed + 0x5e);

    // --- Async ingestion front-end: open-loop arrival patterns -------------
    let ingest_json = ingest_sweep(&graph, &pattern, config.seed + 0x16);

    let build_scaling = build_scaling_sweep(&scaling_graph, &scaling_pattern, &config);
    let build_scaling_json = obj(vec![
        (
            "workload",
            obj(vec![
                ("nodes", JsonValue::Int(config.scaling_nodes as i64)),
                ("edges", JsonValue::Int(config.scaling_edges as i64)),
                ("seed", JsonValue::Int((config.seed + 0x5c) as i64)),
            ]),
        ),
        ("host_parallelism", host_parallelism_json()),
        ("runs", scaling_runs_json(&build_scaling, "nodes_per_sec")),
    ]);

    // --- Report -----------------------------------------------------------
    let report = obj(vec![
        (
            "workload",
            obj(vec![
                ("nodes", JsonValue::Int(config.nodes as i64)),
                ("edges", JsonValue::Int(config.edges as i64)),
                ("labels", JsonValue::Int(config.labels as i64)),
                ("pattern_nodes", JsonValue::Int(pattern.node_count() as i64)),
                ("pattern_edges", JsonValue::Int(pattern.edge_count() as i64)),
                ("maintenance_updates", JsonValue::Int(maintenance.len() as i64)),
                ("mixed_updates", JsonValue::Int(mixed.len() as i64)),
                ("batch_size", JsonValue::Int(batch.len() as i64)),
                ("seed", JsonValue::Int(config.seed as i64)),
            ]),
        ),
        ("unit_update", unit_json(&maintenance_cmp)),
        ("unit_update_mixed", unit_json(&mixed_cmp)),
        (
            "batch",
            obj(vec![
                ("counter_median_ms", JsonValue::Float(counter_batch_ns as f64 / 1e6)),
                ("legacy_median_ms", JsonValue::Float(legacy_batch_ns as f64 / 1e6)),
                ("speedup", JsonValue::Float(batch_speedup)),
                ("counter_updates_per_sec", JsonValue::Float(counter_tput)),
                ("legacy_updates_per_sec", JsonValue::Float(legacy_tput)),
                ("counter_aff", JsonValue::Int(counter_batch_aff as i64)),
                ("legacy_aff", JsonValue::Int(legacy_batch_aff as i64)),
            ]),
        ),
        // Sequential cold-start build, pinned to 1 shard so the trajectory
        // stays comparable across runs (mirrors the `batch` baseline policy).
        (
            "build",
            obj(vec![
                ("shards", JsonValue::Int(1)),
                ("median_ms", JsonValue::Float(build_ns as f64 / 1e6)),
                ("nodes", JsonValue::Int(config.nodes as i64)),
                ("edges", JsonValue::Int(config.edges as i64)),
            ]),
        ),
        ("batch_scaling", scaling_json),
        ("build_scaling", build_scaling_json),
        ("mutation_scaling", mutation_scaling_json),
        ("scan_scaling", scan_scaling_json),
        ("durability", durability_json),
        ("delta", delta_json),
        ("service", service_json),
        ("ingest", ingest_json),
    ]);
    std::fs::write(&config.out, report.to_string()).expect("write report");
    println!("wrote {}", config.out);

    // --- Perf-regression gate --------------------------------------------
    if let Some(committed) = committed {
        let failures = regression_gate(&report, &committed, config.check_tolerance);
        if !failures.is_empty() {
            eprintln!(
                "perf-regression gate FAILED against {}:",
                config.check_against.as_deref().unwrap_or_default()
            );
            for failure in &failures {
                eprintln!("  {failure}");
            }
            std::process::exit(1);
        }
        println!(
            "perf-regression gate passed against {}",
            config.check_against.as_deref().unwrap_or_default()
        );
    }
}

/// The measuring host's available parallelism — wall-clock scaling is only
/// meaningful where the host actually has cores to scale onto.
fn host_parallelism_json() -> JsonValue {
    JsonValue::Int(std::thread::available_parallelism().map(|n| n.get() as i64).unwrap_or(1))
}

/// Renders a shard sweep as JSON: per run the shard count, median wall time,
/// a throughput figure under `rate_key` and the speedup against 1 shard.
fn scaling_runs_json(runs: &[ScalingRun], rate_key: &str) -> JsonValue {
    let one_shard_tput = runs[0].throughput;
    JsonValue::Array(
        runs.iter()
            .map(|run| {
                obj(vec![
                    ("shards", JsonValue::Int(run.shards as i64)),
                    ("median_ms", JsonValue::Float(run.median_ns as f64 / 1e6)),
                    (rate_key, JsonValue::Float(run.throughput)),
                    (
                        "speedup_vs_1_shard",
                        JsonValue::Float(run.throughput / one_shard_tput.max(f64::MIN_POSITIVE)),
                    ),
                ])
            })
            .collect(),
    )
}
