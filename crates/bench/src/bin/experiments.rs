//! Regenerates every figure of the paper's evaluation (Section 8).
//!
//! ```text
//! cargo run -p igpm-bench --release --bin experiments -- all --scale 0.1
//! cargo run -p igpm-bench --release --bin experiments -- fig18a fig19a
//! ```
//!
//! Each figure prints a table with one row per (algorithm, x-axis point); the
//! shape of those series is what `EXPERIMENTS.md` compares against the paper.
//! The `--scale` flag multiplies every dataset/update size (1.0 = the sizes
//! reported in the paper; the default keeps the full sweep tractable on a
//! laptop).

use igpm_baseline::{
    apply_batch_naive, isomorphic_result_nodes, HornSatSimulation, MatrixBoundedIndex,
};
use igpm_bench::report::{print_table, time_ms, Row};
use igpm_bench::workloads as wl;
use igpm_core::{
    match_bounded, match_bounded_with_matrix, match_simulation, BoundedIndex, SimulationIndex,
};
use igpm_distance::landmark_inc::{del_lm, inc_lm, ins_lm};
use igpm_distance::{
    BfsOracle, DistanceMatrix, DistanceOracle, LandmarkIndex, LandmarkSelection, TwoHopLabels,
};
use igpm_generator::{evolution_split, mixed_batch, synthetic_graph, SyntheticConfig};
use igpm_graph::{BatchUpdate, DataGraph, Pattern, Update};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = wl::DEFAULT_SCALE;
    let mut figures: Vec<String> = Vec::new();
    let mut iter = args.iter().peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                scale = iter
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a numeric value");
            }
            other => figures.push(other.to_string()),
        }
    }
    if figures.is_empty() || figures.iter().any(|f| f == "all") {
        figures = vec![
            "fig16a", "fig16b", "fig16c", "fig17a", "fig17b", "fig17c", "fig17d", "fig18a",
            "fig18b", "fig18c", "fig18d", "fig19a", "fig19b", "fig19c", "fig19d", "fig20a",
            "fig20b", "fig20c", "fig20d", "fig20e", "fig20f",
        ]
        .into_iter()
        .map(String::from)
        .collect();
    }
    println!("# Incremental graph pattern matching — experiment harness (scale {scale})");
    for figure in figures {
        match figure.as_str() {
            "fig16a" => fig16a(scale),
            "fig16b" => fig16b(scale),
            "fig16c" => fig16c(scale),
            "fig17a" => fig17_oracles(scale, "youtube"),
            "fig17b" => fig17_oracles(scale, "citation"),
            "fig17c" => fig17c(scale),
            "fig17d" => fig17d(scale),
            "fig18a" => fig18_synthetic(scale, true),
            "fig18b" => fig18_synthetic(scale, false),
            "fig18c" => fig18_real(scale, "youtube"),
            "fig18d" => fig18_real(scale, "citation"),
            "fig19a" => fig19_synthetic(scale, true),
            "fig19b" => fig19_synthetic(scale, false),
            "fig19c" => fig19_real(scale, "youtube"),
            "fig19d" => fig19_real(scale, "citation"),
            "fig20a" => fig20a(scale),
            "fig20b" => fig20b(scale),
            "fig20c" => fig20c(scale),
            "fig20d" => fig20d(scale),
            "fig20e" => fig20e(scale),
            "fig20f" => fig20f(scale),
            other => eprintln!("unknown figure id: {other}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Exp-1: effectiveness and efficiency of bounded simulation (Fig. 16)
// ---------------------------------------------------------------------------

/// Fig. 16(a): how many community members per pattern node each notion finds.
fn fig16a(scale: f64) {
    let graph = wl::youtube(scale);
    let mut rows = Vec::new();
    let pattern_count = 10;
    let mut vf2_failures = 0usize;
    for seed in 0..pattern_count {
        let pattern = wl::bounded_pattern(&graph, 4, 5, 2, 3, 1600 + seed);
        let bsim = match_bounded_with_bfs_cached(&pattern, &graph);
        let avg_bsim = bsim.pair_count() as f64 / pattern.node_count() as f64;
        let iso_nodes = isomorphic_result_nodes(&pattern.as_normal(), &graph, 20_000);
        if iso_nodes.is_empty() {
            vf2_failures += 1;
        }
        rows.push(Row::new("Match (k=3)", format!("pattern {seed}"), avg_bsim, "matches/node"));
        rows.push(Row::new(
            "VF2",
            format!("pattern {seed}"),
            iso_nodes.len() as f64 / pattern.node_count() as f64,
            "matches/node",
        ));
    }
    rows.push(Row::new("VF2 found nothing", "patterns", vf2_failures as f64, "count"));
    print_table("Fig. 16(a) — effectiveness: community members identified (YouTube-like)", &rows);
}

/// Fig. 16(b): Match vs VF2 elapsed time, varying pattern size.
fn fig16b(scale: f64) {
    let graph = wl::youtube(scale);
    let mut rows = Vec::new();
    for size in 3..=8usize {
        let x = format!("({size},{size})");
        // |pred| = 2 keeps the candidate sets selective enough for Match yet
        // large enough that VF2's combinatorial search is visible (the paper's
        // hand-built patterns have the same flavour). The VF2 enumeration is
        // capped so a pathological pattern cannot stall the harness.
        let normal = wl::normal_pattern(&graph, size, size, 2, 1650 + size as u64);
        let bounded = wl::bounded_pattern(&graph, size, size, 2, 3, 1650 + size as u64);
        let (t_vf2, _) =
            time_ms(|| igpm_baseline::find_isomorphic_matches(&normal, &graph, 100_000).len());
        let (t_k1, _) = time_ms(|| match_bounded_with_bfs_cached(&normal, &graph));
        let (t_k3, _) = time_ms(|| match_bounded_with_bfs_cached(&bounded, &graph));
        rows.push(Row::new("VF2", x.clone(), t_vf2, "ms"));
        rows.push(Row::new("Match (k=1)", x.clone(), t_k1, "ms"));
        rows.push(Row::new("Match (k=3)", x, t_k3, "ms"));
    }
    print_table("Fig. 16(b) — Match vs VF2 efficiency (YouTube-like)", &rows);
}

/// Fig. 16(c): number of distinct matched nodes per notion, varying pattern size.
fn fig16c(scale: f64) {
    let graph = wl::youtube(scale);
    let mut rows = Vec::new();
    for size in 3..=8usize {
        let x = format!("({size},{size})");
        let normal = wl::normal_pattern(&graph, size, size, 2, 1700 + size as u64);
        let bounded = wl::bounded_pattern(&graph, size, size, 2, 3, 1700 + size as u64);
        let vf2 = isomorphic_result_nodes(&normal, &graph, 50_000).len();
        let k1 = match_bounded_with_bfs_cached(&normal, &graph).matched_data_nodes().len();
        let k3 = match_bounded_with_bfs_cached(&bounded, &graph).matched_data_nodes().len();
        rows.push(Row::new("VF2", x.clone(), vf2 as f64, "#matches"));
        rows.push(Row::new("Match (k=1)", x.clone(), k1 as f64, "#matches"));
        rows.push(Row::new("Match (k=3)", x, k3 as f64, "#matches"));
    }
    print_table("Fig. 16(c) — distinct matches found (YouTube-like)", &rows);
}

// ---------------------------------------------------------------------------
// Exp-2: Match with different distance oracles and scalability (Fig. 17)
// ---------------------------------------------------------------------------

/// Fig. 17(a)/(b): Matrix+Match vs 2-hop+Match vs BFS+Match on the real-life
/// dataset substitutes. Index construction is done once per dataset (the paper
/// likewise excludes the shared distance matrix construction).
fn fig17_oracles(scale: f64, dataset: &str) {
    let graph = if dataset == "youtube" { wl::youtube(scale) } else { wl::citation(scale) };
    let matrix = DistanceMatrix::build(&graph);
    let two_hop = TwoHopLabels::build(&graph);
    let mut rows = Vec::new();
    for (nodes, edges, k) in
        [(2usize, 3usize, 3u32), (2, 3, 4), (4, 6, 3), (4, 6, 4), (6, 9, 3), (6, 9, 4)]
    {
        let x = format!("({nodes},{edges},{k})");
        let pattern =
            wl::bounded_pattern(&graph, nodes, edges, 3, k, 1720 + nodes as u64 * 10 + k as u64);
        let (t_matrix, _) = time_ms(|| match_bounded(&pattern, &graph, &matrix));
        let (t_two_hop, _) = time_ms(|| match_bounded(&pattern, &graph, &two_hop));
        let (t_bfs, _) = time_ms(|| match_bounded_with_bfs_cached(&pattern, &graph));
        rows.push(Row::new("Matrix+Match", x.clone(), t_matrix, "ms"));
        rows.push(Row::new("2-hop+Match", x.clone(), t_two_hop, "ms"));
        rows.push(Row::new("BFS+Match", x, t_bfs, "ms"));
    }
    let title = format!(
        "Fig. 17({}) — Match efficiency with different distance oracles ({dataset}-like)",
        if dataset == "youtube" { "a" } else { "b" }
    );
    print_table(&title, &rows);
}

/// Fig. 17(c): BFS+Match scalability with pattern size on a large synthetic graph.
fn fig17c(scale: f64) {
    let nodes = wl::scaled(1_000_000, scale, 2_000);
    let edges = nodes * 2;
    let graph = wl::synthetic(nodes, edges, 0x17c);
    let mut rows = Vec::new();
    for k in [3u32, 4u32] {
        for size in 3..=8usize {
            let pattern = wl::bounded_pattern(&graph, size, size, 3, k, 1750 + size as u64);
            let (t, _) = time_ms(|| match_bounded_with_bfs_cached(&pattern, &graph));
            rows.push(Row::new(format!("BFS+Match (k={k})"), format!("|Vp|=|Ep|={size}"), t, "ms"));
        }
    }
    print_table(
        &format!("Fig. 17(c) — scalability with pattern size (synthetic |V|={nodes}, |E|={edges})"),
        &rows,
    );
}

/// Fig. 17(d): BFS+Match scalability with graph size.
fn fig17d(scale: f64) {
    let mut rows = Vec::new();
    for step in 3..=10usize {
        let nodes = wl::scaled(step * 100_000, scale, 1_000);
        let edges = nodes * 2;
        let graph = wl::synthetic(nodes, edges, 0x17d + step as u64);
        for (tag, pn, pe) in [("P1 (3,3,3)", 3usize, 3usize), ("P2 (4,4,3)", 4, 4)] {
            let pattern = wl::bounded_pattern(&graph, pn, pe, 3, 3, 1780 + step as u64);
            let (t, _) = time_ms(|| match_bounded_with_bfs_cached(&pattern, &graph));
            rows.push(Row::new(format!("BFS+Match {tag}"), format!("|V|={nodes}"), t, "ms"));
        }
    }
    print_table("Fig. 17(d) — scalability with data graph size (synthetic)", &rows);
}

// ---------------------------------------------------------------------------
// Exp (incremental simulation): Fig. 18
// ---------------------------------------------------------------------------

/// Fig. 18(a)/(b): incremental simulation on synthetic graphs under growing
/// insertion (resp. deletion) batches.
fn fig18_synthetic(scale: f64, insertions: bool) {
    let nodes = wl::scaled(17_000, scale, 1_000);
    let base_edges = wl::scaled(78_000, scale, 4_000);
    let graph = wl::synthetic(nodes, base_edges, 0x18a);
    let pattern = wl::normal_pattern(&graph, 4, 5, 3, 0x18aa);
    let mut rows = Vec::new();
    for step in 1..=6usize {
        let count = wl::scaled(5_000 * step, scale, 100 * step);
        let batch = if insertions {
            wl::insertions(&graph, count, 0x1800 + step as u64)
        } else {
            wl::deletions(&graph, count, 0x1800 + step as u64)
        };
        let x = format!("|ΔG|={count}");
        rows.extend(measure_incsim(&graph, &pattern, &batch, &x));
    }
    let title = format!(
        "Fig. 18({}) — incremental simulation, synthetic |V|={nodes} ({})",
        if insertions { "a" } else { "b" },
        if insertions { "insertions" } else { "deletions" }
    );
    print_table(&title, &rows);
}

/// Fig. 18(c)/(d): incremental simulation on the real-life dataset substitutes,
/// using timestamp-based evolution snapshots as the update workload.
fn fig18_real(scale: f64, dataset: &str) {
    let (full, time_attr) = if dataset == "youtube" {
        (wl::youtube(scale), "age")
    } else {
        (wl::citation(scale), "year")
    };
    let pattern = wl::normal_pattern(&full, 6, 8, 3, 0x18c);
    let mut rows = Vec::new();
    for step in 1..=5usize {
        let fraction = 0.06 * step as f64;
        let (base, additions) = evolution_split(&full, fraction, time_attr);
        let x = format!("+{} edges", additions.len());
        rows.extend(measure_incsim(&base, &pattern, &additions, &x));
    }
    let title = format!(
        "Fig. 18({}) — incremental simulation over the {dataset}-like evolution",
        if dataset == "youtube" { "c" } else { "d" }
    );
    print_table(&title, &rows);
}

/// Measures Matchs (batch), IncMatchn (naive), IncMatch (minDelta) and HornSat
/// on the same batch of updates applied to `base`.
fn measure_incsim(base: &DataGraph, pattern: &Pattern, batch: &BatchUpdate, x: &str) -> Vec<Row> {
    let mut rows = Vec::new();

    // Batch recomputation on the updated graph.
    let mut updated = base.clone();
    batch.apply(&mut updated);
    let (t_batch, _) = time_ms(|| match_simulation(pattern, &updated));
    rows.push(Row::new("Matchs (batch)", x, t_batch, "ms"));

    // IncMatch (minDelta + simultaneous processing).
    let mut g = base.clone();
    let mut index = SimulationIndex::build(pattern, &g);
    let (t_inc, _) = time_ms(|| index.apply_batch(&mut g, batch));
    rows.push(Row::new("IncMatch", x, t_inc, "ms"));
    debug_assert_eq!(index.matches(), match_simulation(pattern, &updated));

    // IncMatchn: one unit update at a time.
    let mut g = base.clone();
    let mut index = SimulationIndex::build(pattern, &g);
    let (t_naive, _) = time_ms(|| apply_batch_naive(&mut index, &mut g, batch));
    rows.push(Row::new("IncMatchn (naive)", x, t_naive, "ms"));

    // HORNSAT-based incremental simulation.
    let mut g = base.clone();
    let mut horn = HornSatSimulation::build(pattern, &g);
    let (t_horn, _) = time_ms(|| horn.apply_batch(&mut g, batch));
    rows.push(Row::new("HornSat", x, t_horn, "ms"));

    rows
}

// ---------------------------------------------------------------------------
// Exp (incremental bounded simulation): Fig. 19
// ---------------------------------------------------------------------------

/// Fig. 19(a)/(b): incremental bounded simulation on synthetic graphs.
fn fig19_synthetic(scale: f64, insertions: bool) {
    let nodes = wl::scaled(17_000, scale, 800);
    let base_edges = wl::scaled(99_000, scale, 4_000);
    let graph = wl::synthetic(nodes, base_edges, 0x19a);
    let pattern = wl::dag_bounded_pattern(&graph, 4, 5, 3, 3, 0x19aa);
    let mut rows = Vec::new();
    for step in 1..=5usize {
        let count = wl::scaled(2_000 * step, scale, 40 * step);
        let batch = if insertions {
            wl::insertions(&graph, count, 0x1900 + step as u64)
        } else {
            wl::deletions(&graph, count, 0x1900 + step as u64)
        };
        let x = format!("|ΔG|={count}");
        rows.extend(measure_incbsim(&graph, &pattern, &batch, &x));
    }
    let title = format!(
        "Fig. 19({}) — incremental bounded simulation, synthetic |V|={nodes} ({})",
        if insertions { "a" } else { "b" },
        if insertions { "insertions" } else { "deletions" }
    );
    print_table(&title, &rows);
}

/// Fig. 19(c)/(d): incremental bounded simulation on the real-life substitutes.
fn fig19_real(scale: f64, dataset: &str) {
    let (full, time_attr) = if dataset == "youtube" {
        (wl::youtube(scale), "age")
    } else {
        (wl::citation(scale), "year")
    };
    let pattern = wl::dag_bounded_pattern(&full, 6, 8, 3, 3, 0x19c);
    let mut rows = Vec::new();
    for step in 1..=4usize {
        let fraction = 0.04 * step as f64;
        let (base, additions) = evolution_split(&full, fraction, time_attr);
        let x = format!("+{} edges", additions.len());
        rows.extend(measure_incbsim(&base, &pattern, &additions, &x));
    }
    let title = format!(
        "Fig. 19({}) — incremental bounded simulation over the {dataset}-like evolution",
        if dataset == "youtube" { "c" } else { "d" }
    );
    print_table(&title, &rows);
}

/// Measures Matchbs (batch), IncBMatchm (distance matrix) and IncBMatch
/// (landmarks) on the same batch.
fn measure_incbsim(base: &DataGraph, pattern: &Pattern, batch: &BatchUpdate, x: &str) -> Vec<Row> {
    let mut rows = Vec::new();

    let mut updated = base.clone();
    batch.apply(&mut updated);
    let (t_batch, _) = time_ms(|| match_bounded_with_matrix(pattern, &updated));
    rows.push(Row::new("Matchbs (batch)", x, t_batch, "ms"));

    let mut g = base.clone();
    let mut index = BoundedIndex::build(pattern, &g);
    let (t_inc, _) = time_ms(|| index.apply_batch(&mut g, batch));
    rows.push(Row::new("IncBMatch", x, t_inc, "ms"));

    let mut g = base.clone();
    let mut matrix_index = MatrixBoundedIndex::build(pattern, &g);
    let (t_matrix, _) = time_ms(|| matrix_index.apply_batch(&mut g, batch));
    rows.push(Row::new("IncBMatchm (matrix)", x, t_matrix, "ms"));

    rows
}

// ---------------------------------------------------------------------------
// Optimisations: Fig. 20
// ---------------------------------------------------------------------------

/// Fig. 20(a): how many updates `minDelta` removes, varying the densification
/// exponent α.
fn fig20a(scale: f64) {
    let nodes = wl::scaled(20_000, scale, 1_500);
    let update_count = wl::scaled(4_000, scale, 200);
    let mut rows = Vec::new();
    for alpha_step in 0..=4usize {
        let alpha = 1.0 + 0.05 * alpha_step as f64;
        let graph = synthetic_graph(&SyntheticConfig::densification(
            nodes,
            alpha,
            8,
            0x20a + alpha_step as u64,
        ));
        let pattern = wl::normal_pattern(&graph, 4, 5, 3, 0x20aa);
        let batch = mixed_batch(&graph, update_count / 2, update_count / 2, 0x20ab);
        let mut g = graph.clone();
        let mut index = SimulationIndex::build(&pattern, &g);
        let stats = index.apply_batch(&mut g, &batch).stats;
        rows.push(Row::new(
            "original updates",
            format!("α={alpha:.2}"),
            stats.delta_g as f64,
            "#updates",
        ));
        rows.push(Row::new(
            "reduced updates",
            format!("α={alpha:.2}"),
            stats.reduced_delta_g as f64,
            "#updates",
        ));
    }
    print_table("Fig. 20(a) — minDelta update reduction (synthetic, varying α)", &rows);
}

/// Fig. 20(b): space of the landmark/distance vectors, incrementally
/// maintained (InsLM) versus rebuilt from scratch (BatchLM).
fn fig20b(scale: f64) {
    let nodes = wl::scaled(10_000, scale, 1_000);
    let graph = synthetic_graph(&SyntheticConfig::densification(nodes, 1.1, 8, 0x20b));
    let mut rows = Vec::new();
    let mut incremental_graph = graph.clone();
    let mut incremental = LandmarkIndex::build(&incremental_graph, LandmarkSelection::VertexCover);
    let mut total_inserted = 0usize;
    for step in 1..=5usize {
        let count = wl::scaled(1_000, scale, 50);
        let batch = wl::insertions(&incremental_graph, count, 0x20b0 + step as u64);
        for update in batch.iter() {
            let (a, b) = update.endpoints();
            ins_lm(&mut incremental, &mut incremental_graph, a, b);
        }
        total_inserted += count;
        let rebuilt = LandmarkIndex::build(&incremental_graph, LandmarkSelection::VertexCover);
        let x = format!("+{total_inserted} edges");
        rows.push(Row::new(
            "InsLM (maintained)",
            x.clone(),
            incremental.memory_bytes() as f64 / 1e6,
            "MB",
        ));
        rows.push(Row::new("BatchLM (rebuilt)", x, rebuilt.memory_bytes() as f64 / 1e6, "MB"));
    }
    print_table("Fig. 20(b) — landmark + distance vector space (synthetic |V|=10K·scale)", &rows);
}

/// Fig. 20(c): InsLM vs BatchLM(+) and DelLM vs BatchLM(-) on YouTube-like data.
fn fig20c(scale: f64) {
    let graph = wl::youtube(scale);
    let mut rows = Vec::new();
    for step in 1..=4usize {
        let count = wl::scaled(750 * step, scale, 30 * step);
        // Insertions.
        let batch = wl::insertions(&graph, count, 0x20c0 + step as u64);
        let mut g = graph.clone();
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
        let (t_ins, _) = time_ms(|| {
            for update in batch.iter() {
                let (a, b) = update.endpoints();
                ins_lm(&mut index, &mut g, a, b);
            }
        });
        let (t_rebuild_plus, _) =
            time_ms(|| LandmarkIndex::build(&g, LandmarkSelection::VertexCover));
        rows.push(Row::new("InsLM", format!("+{count}"), t_ins, "ms"));
        rows.push(Row::new("BatchLM(+)", format!("+{count}"), t_rebuild_plus, "ms"));

        // Deletions.
        let batch = wl::deletions(&graph, count, 0x20c8 + step as u64);
        let mut g = graph.clone();
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
        let (t_del, _) = time_ms(|| {
            for update in batch.iter() {
                let (a, b) = update.endpoints();
                del_lm(&mut index, &mut g, a, b);
            }
        });
        let (t_rebuild_minus, _) =
            time_ms(|| LandmarkIndex::build(&g, LandmarkSelection::VertexCover));
        rows.push(Row::new("DelLM", format!("-{count}"), t_del, "ms"));
        rows.push(Row::new("BatchLM(-)", format!("-{count}"), t_rebuild_minus, "ms"));
    }
    print_table(
        "Fig. 20(c) — landmark maintenance, unit procedures vs rebuild (YouTube-like)",
        &rows,
    );
}

/// Fig. 20(d): IncLM vs BatchLM under mixed batches on YouTube-like data.
fn fig20d(scale: f64) {
    let graph = wl::youtube(scale);
    let mut rows = Vec::new();
    for step in 1..=4usize {
        let count = wl::scaled(1_500 * step, scale, 60 * step);
        let batch = mixed_batch(&graph, count / 2, count / 2, 0x20d0 + step as u64);
        let mut g = graph.clone();
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
        let (t_inc, _) = time_ms(|| inc_lm(&mut index, &mut g, &batch));
        let (t_rebuild, _) = time_ms(|| LandmarkIndex::build(&g, LandmarkSelection::VertexCover));
        rows.push(Row::new("IncLM", format!("{count} updates"), t_inc, "ms"));
        rows.push(Row::new("BatchLM", format!("{count} updates"), t_rebuild, "ms"));
    }
    print_table("Fig. 20(d) — IncLM vs BatchLM under batch updates (YouTube-like)", &rows);
}

/// Fig. 20(e): IncLM on the Citation-like dataset. The paper varies the
/// maximum pattern bound k because its lazy variant only maintains distances
/// within k hops; our implementation maintains exact vectors, so the figure
/// reports the cost against the batch size for two nominal values of k.
fn fig20e(scale: f64) {
    let graph = wl::citation(scale);
    let mut rows = Vec::new();
    for step in 1..=4usize {
        let count = wl::scaled(750 * step, scale, 30 * step);
        let batch = mixed_batch(&graph, count / 2, count / 2, 0x20e0 + step as u64);
        for k in [3u32, 6u32] {
            let mut g = graph.clone();
            let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
            let (t, _) = time_ms(|| inc_lm(&mut index, &mut g, &batch));
            rows.push(Row::new(format!("IncLM (k={k})"), format!("{count} updates"), t, "ms"));
        }
    }
    print_table("Fig. 20(e) — IncLM over the Citation-like dataset", &rows);
}

/// Fig. 20(f): IncLM vs the naive InsLM+DelLM loop on synthetic data.
fn fig20f(scale: f64) {
    let nodes = wl::scaled(15_000, scale, 1_000);
    let edges = wl::scaled(40_000, scale, 3_000);
    let graph = wl::synthetic(nodes, edges, 0x20f);
    let mut rows = Vec::new();
    for step in 1..=4usize {
        let count = wl::scaled(750 * step, scale, 30 * step);
        let batch = mixed_batch(&graph, count / 2, count / 2, 0x20f0 + step as u64);

        let mut g = graph.clone();
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
        let (t_inc, _) = time_ms(|| inc_lm(&mut index, &mut g, &batch));

        let mut g = graph.clone();
        let mut index = LandmarkIndex::build(&g, LandmarkSelection::VertexCover);
        let (t_naive, _) = time_ms(|| {
            for update in batch.iter() {
                match *update {
                    Update::InsertEdge { from, to } => {
                        ins_lm(&mut index, &mut g, from, to);
                    }
                    Update::DeleteEdge { from, to } => {
                        del_lm(&mut index, &mut g, from, to);
                    }
                }
            }
        });
        rows.push(Row::new("IncLM", format!("{count} updates"), t_inc, "ms"));
        rows.push(Row::new("InsLM+DelLM (naive)", format!("{count} updates"), t_naive, "ms"));
    }
    print_table("Fig. 20(f) — IncLM vs unit-at-a-time landmark maintenance (synthetic)", &rows);
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

/// `BFS+Match` with a generous row cache — the workhorse configuration used by
/// the figures whose x-axis is not the distance oracle itself.
fn match_bounded_with_bfs_cached(
    pattern: &Pattern,
    graph: &DataGraph,
) -> igpm_graph::MatchRelation {
    let oracle = BfsOracle::with_cache(graph, 8192);
    let _ = oracle.name();
    match_bounded(pattern, graph, &oracle)
}
