//! The pre-optimisation incremental simulation engine, frozen as a baseline.
//!
//! This is the hash-set implementation the repository shipped before the
//! counter-backed rewrite of `igpm_core::incremental::sim`: `match(u)` and
//! `candt(u)` are per-pattern-node hash sets, `ss`/`cs`/`cc` classification
//! probes one hash set per pattern edge, and every worklist visit re-derives
//! support by scanning `graph.children(v)` against the match sets
//! (`has_full_support`). It is kept **only** so `incsim_bench` can measure the
//! speedup of the counter-backed engine against the exact same algorithmic
//! baseline in the same run (see `BENCHMARKS.md`); nothing else should use it.

use igpm_core::{candidates, AffStats};
use igpm_distance::landmark_inc::reduce_batch;
use igpm_graph::hash::FastHashSet;
use igpm_graph::{
    BatchUpdate, DataGraph, MatchRelation, NodeId, Pattern, PatternNodeId,
    StronglyConnectedComponents, Update,
};

/// Auxiliary state of the frozen hash-set engine.
#[derive(Debug, Clone)]
pub struct LegacySimulationIndex {
    pattern: Pattern,
    match_sets: Vec<FastHashSet<NodeId>>,
    candt_sets: Vec<FastHashSet<NodeId>>,
    scc: StronglyConnectedComponents,
    has_cycle: bool,
}

impl LegacySimulationIndex {
    /// Builds the index by computing the maximum simulation from scratch.
    ///
    /// # Panics
    /// Panics if `pattern` is not a normal pattern.
    pub fn build(pattern: &Pattern, graph: &DataGraph) -> Self {
        assert!(pattern.is_normal(), "incremental simulation needs a normal pattern");
        let all_candidates = candidates(pattern, graph);
        let scc = StronglyConnectedComponents::of_pattern(pattern);
        let has_cycle = scc.components().any(|c| scc.is_nontrivial(c));

        let mut index = LegacySimulationIndex {
            pattern: pattern.clone(),
            match_sets: all_candidates.iter().map(|list| list.iter().copied().collect()).collect(),
            candt_sets: vec![FastHashSet::default(); pattern.node_count()],
            scc,
            has_cycle,
        };
        index.refine_all(graph);
        for (u_idx, list) in all_candidates.into_iter().enumerate() {
            for v in list {
                if !index.match_sets[u_idx].contains(&v) {
                    index.candt_sets[u_idx].insert(v);
                }
            }
        }
        index
    }

    /// The current maximum match.
    pub fn matches(&self) -> MatchRelation {
        if self.match_sets.iter().any(FastHashSet::is_empty) {
            return MatchRelation::empty(self.pattern.node_count());
        }
        MatchRelation::from_lists(
            self.match_sets.iter().map(|set| set.iter().copied().collect::<Vec<_>>()),
        )
    }

    /// `IncMatch-` (hash-set variant). Uses the seed's `O(deg)` linear edge
    /// removal ([`DataGraph::remove_edge_linear`]) so the measured baseline
    /// matches what the pre-optimisation implementation actually cost.
    pub fn delete_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        if !graph.remove_edge_linear(from, to) {
            return stats;
        }
        if !self.is_ss_edge(from, to) {
            return stats;
        }
        stats.reduced_delta_g = 1;
        self.process_deletions(graph, &[(from, to)], &mut stats);
        stats
    }

    /// `IncMatch+` (hash-set variant).
    pub fn insert_edge(&mut self, graph: &mut DataGraph, from: NodeId, to: NodeId) -> AffStats {
        let mut stats = AffStats { delta_g: 1, ..AffStats::default() };
        if !graph.add_edge(from, to) {
            return stats;
        }
        if !self.is_cs_or_cc_edge(from, to) {
            return stats;
        }
        stats.reduced_delta_g = 1;
        self.process_insertions(graph, &[(from, to)], &mut stats);
        stats
    }

    /// `IncMatch` batch application with `minDelta` (hash-set variant).
    pub fn apply_batch(&mut self, graph: &mut DataGraph, batch: &BatchUpdate) -> AffStats {
        let mut stats = AffStats { delta_g: batch.len(), ..AffStats::default() };
        let (effective, _) = reduce_batch(graph, batch);
        let mut relevant_deletions: Vec<(NodeId, NodeId)> = Vec::new();
        let mut relevant_insertions: Vec<(NodeId, NodeId)> = Vec::new();
        for update in &effective {
            let (a, b) = update.endpoints();
            match update {
                Update::DeleteEdge { .. } if self.is_ss_edge(a, b) => {
                    relevant_deletions.push((a, b))
                }
                Update::InsertEdge { .. } if self.is_cs_or_cc_edge(a, b) => {
                    relevant_insertions.push((a, b))
                }
                _ => {}
            }
        }
        stats.reduced_delta_g = relevant_deletions.len() + relevant_insertions.len();
        for update in &effective {
            // Deletions go through the seed's linear removal path so the
            // baseline's batch cost is faithful too.
            match *update {
                Update::DeleteEdge { from, to } => {
                    graph.remove_edge_linear(from, to);
                }
                Update::InsertEdge { .. } => {
                    update.apply(graph);
                }
            }
        }
        if !relevant_deletions.is_empty() {
            self.process_deletions(graph, &relevant_deletions, &mut stats);
        }
        if !relevant_insertions.is_empty() {
            self.process_insertions(graph, &relevant_insertions, &mut stats);
        }
        stats
    }

    fn is_ss_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.pattern.edges().iter().any(|e| {
            self.match_sets[e.from.index()].contains(&from)
                && self.match_sets[e.to.index()].contains(&to)
        })
    }

    fn is_cs_or_cc_edge(&self, from: NodeId, to: NodeId) -> bool {
        self.pattern.edges().iter().any(|e| {
            self.candt_sets[e.from.index()].contains(&from)
                && (self.match_sets[e.to.index()].contains(&to)
                    || self.candt_sets[e.to.index()].contains(&to))
        })
    }

    /// The adjacency rescan the counter-backed engine eliminates.
    fn has_full_support(&self, graph: &DataGraph, u: PatternNodeId, v: NodeId) -> bool {
        self.pattern.children(u).iter().all(|&(u2, _)| {
            graph.children(v).iter().any(|w| self.match_sets[u2.index()].contains(w))
        })
    }

    fn process_deletions(
        &mut self,
        graph: &DataGraph,
        deleted: &[(NodeId, NodeId)],
        stats: &mut AffStats,
    ) {
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(a, b) in deleted {
            for edge in self.pattern.edges() {
                if self.match_sets[edge.from.index()].contains(&a)
                    && self.match_sets[edge.to.index()].contains(&b)
                {
                    worklist.push((edge.from, a));
                }
            }
        }
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if !self.match_sets[u.index()].contains(&v) {
                continue;
            }
            if self.has_full_support(graph, u, v) {
                continue;
            }
            self.match_sets[u.index()].remove(&v);
            self.candt_sets[u.index()].insert(v);
            stats.matches_removed += 1;
            stats.aux_changes += 1;
            for &(u_parent, _) in self.pattern.parents(u) {
                for &p in graph.parents(v) {
                    if self.match_sets[u_parent.index()].contains(&p) {
                        worklist.push((u_parent, p));
                    }
                }
            }
        }
    }

    fn process_insertions(
        &mut self,
        graph: &DataGraph,
        inserted: &[(NodeId, NodeId)],
        stats: &mut AffStats,
    ) {
        let mut worklist: Vec<(PatternNodeId, NodeId)> = Vec::new();
        for &(a, b) in inserted {
            for edge in self.pattern.edges() {
                let source_is_cand = self.candt_sets[edge.from.index()].contains(&a);
                let target_known = self.match_sets[edge.to.index()].contains(&b)
                    || self.candt_sets[edge.to.index()].contains(&b);
                if source_is_cand && target_known {
                    worklist.push((edge.from, a));
                }
            }
        }
        let mut run_cc = self.has_cycle && self.inserted_touches_scc(inserted);
        loop {
            let promoted_cs = self.prop_cs(graph, &mut worklist, stats);
            if promoted_cs {
                run_cc = self.has_cycle;
            }
            if !run_cc {
                break;
            }
            run_cc = false;
            let promoted_cc = self.prop_cc(graph, stats, &mut worklist);
            if !promoted_cc && worklist.is_empty() {
                break;
            }
            if promoted_cc {
                run_cc = true;
            }
        }
    }

    fn inserted_touches_scc(&self, inserted: &[(NodeId, NodeId)]) -> bool {
        inserted.iter().any(|&(a, b)| {
            self.pattern.edges().iter().any(|e| {
                let same_comp =
                    self.scc.component_of(e.from.index()) == self.scc.component_of(e.to.index());
                if !same_comp || !self.scc.is_nontrivial(self.scc.component_of(e.from.index())) {
                    return false;
                }
                (self.candt_sets[e.from.index()].contains(&a)
                    || self.match_sets[e.from.index()].contains(&a))
                    && (self.candt_sets[e.to.index()].contains(&b)
                        || self.match_sets[e.to.index()].contains(&b))
            })
        })
    }

    fn prop_cs(
        &mut self,
        graph: &DataGraph,
        worklist: &mut Vec<(PatternNodeId, NodeId)>,
        stats: &mut AffStats,
    ) -> bool {
        let mut promoted_any = false;
        while let Some((u, v)) = worklist.pop() {
            stats.nodes_visited += 1;
            if !self.candt_sets[u.index()].contains(&v) {
                continue;
            }
            if !self.has_full_support(graph, u, v) {
                continue;
            }
            self.candt_sets[u.index()].remove(&v);
            self.match_sets[u.index()].insert(v);
            stats.matches_added += 1;
            stats.aux_changes += 1;
            promoted_any = true;
            for &(u_parent, _) in self.pattern.parents(u) {
                for &p in graph.parents(v) {
                    if self.candt_sets[u_parent.index()].contains(&p) {
                        worklist.push((u_parent, p));
                    }
                }
            }
        }
        promoted_any
    }

    fn prop_cc(
        &mut self,
        graph: &DataGraph,
        stats: &mut AffStats,
        worklist: &mut Vec<(PatternNodeId, NodeId)>,
    ) -> bool {
        let mut promoted_any = false;
        let components: Vec<_> = self.scc.components().collect();
        for comp in components {
            if !self.scc.is_nontrivial(comp) {
                continue;
            }
            let members: Vec<PatternNodeId> =
                self.scc.members(comp).iter().map(|&i| PatternNodeId::from_index(i)).collect();
            let mut tentative: Vec<FastHashSet<NodeId>> =
                vec![FastHashSet::default(); self.pattern.node_count()];
            for &u in &members {
                tentative[u.index()] = self.candt_sets[u.index()].clone();
            }
            let in_scc = |u: PatternNodeId| members.contains(&u);

            let mut changed = true;
            while changed {
                changed = false;
                for &u in &members {
                    let survivors: Vec<NodeId> = tentative[u.index()]
                        .iter()
                        .copied()
                        .filter(|&v| {
                            stats.nodes_visited += 1;
                            self.pattern.children(u).iter().all(|&(u2, _)| {
                                graph.children(v).iter().any(|w| {
                                    self.match_sets[u2.index()].contains(w)
                                        || (in_scc(u2) && tentative[u2.index()].contains(w))
                                })
                            })
                        })
                        .collect();
                    if survivors.len() != tentative[u.index()].len() {
                        changed = true;
                        tentative[u.index()] = survivors.into_iter().collect();
                    }
                }
            }

            for &u in &members {
                let survivors: Vec<NodeId> = tentative[u.index()].iter().copied().collect();
                for v in survivors {
                    self.candt_sets[u.index()].remove(&v);
                    self.match_sets[u.index()].insert(v);
                    stats.matches_added += 1;
                    stats.aux_changes += 1;
                    promoted_any = true;
                    for &(u_parent, _) in self.pattern.parents(u) {
                        for &p in graph.parents(v) {
                            if self.candt_sets[u_parent.index()].contains(&p) {
                                worklist.push((u_parent, p));
                            }
                        }
                    }
                }
            }
        }
        promoted_any
    }

    fn refine_all(&mut self, graph: &DataGraph) {
        let mut changed = true;
        while changed {
            changed = false;
            for u in self.pattern.nodes() {
                let to_remove: Vec<NodeId> = self.match_sets[u.index()]
                    .iter()
                    .copied()
                    .filter(|&v| !self.has_full_support(graph, u, v))
                    .collect();
                if !to_remove.is_empty() {
                    changed = true;
                    for v in to_remove {
                        self.match_sets[u.index()].remove(&v);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_core::{match_simulation, SimulationIndex};
    use igpm_generator::{
        generate_pattern, mixed_batch, synthetic_graph, PatternGenConfig, PatternShape,
        SyntheticConfig,
    };

    /// The frozen baseline must stay semantically identical to the optimised
    /// engine — otherwise the speedup comparison is meaningless.
    #[test]
    fn legacy_engine_agrees_with_counter_engine_and_batch() {
        for seed in 0..3u64 {
            let base = synthetic_graph(&SyntheticConfig::new(150, 500, 4, 900 + seed));
            let pattern = generate_pattern(
                &base,
                &PatternGenConfig::normal(4, 6, 1, 910 + seed).with_shape(PatternShape::General),
            );
            let batch = mixed_batch(&base, 40, 40, 920 + seed);

            let mut g1 = base.clone();
            let mut legacy = LegacySimulationIndex::build(&pattern, &g1);
            legacy.apply_batch(&mut g1, &batch);

            let mut g2 = base.clone();
            let mut counter = SimulationIndex::build(&pattern, &g2);
            counter.apply_batch(&mut g2, &batch);

            assert_eq!(g1, g2);
            assert_eq!(legacy.matches(), counter.matches(), "seed {seed}");
            assert_eq!(legacy.matches(), match_simulation(&pattern, &g1), "seed {seed}");
        }
    }

    #[test]
    fn legacy_unit_updates_agree_with_batch() {
        let mut graph = synthetic_graph(&SyntheticConfig::new(100, 300, 4, 940));
        let pattern = generate_pattern(&graph, &PatternGenConfig::normal(4, 5, 1, 941));
        let mut index = LegacySimulationIndex::build(&pattern, &graph);
        let batch = mixed_batch(&graph, 25, 25, 942);
        for update in batch.iter() {
            let (a, b) = update.endpoints();
            if update.is_insert() {
                index.insert_edge(&mut graph, a, b);
            } else {
                index.delete_edge(&mut graph, a, b);
            }
        }
        assert_eq!(index.matches(), match_simulation(&pattern, &graph));
    }
}
