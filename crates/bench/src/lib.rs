//! # igpm-bench
//!
//! Benchmark harness reproducing the evaluation of *Incremental Graph Pattern
//! Matching* (Section 8, Figures 16–20).
//!
//! * [`workloads`] builds the datasets, patterns and update streams used by
//!   every experiment (YouTube-like, Citation-like and synthetic graphs, all
//!   seeded and scaled by a single `--scale` factor);
//! * [`report`] renders the measured series in the same shape as the paper's
//!   figures (one row per x-axis point and algorithm);
//! * the `experiments` binary (`cargo run -p igpm-bench --release --bin
//!   experiments -- all`) regenerates every figure and prints the series;
//! * the benches (`cargo bench -p igpm-bench`, driven by [`harness`]) measure
//!   representative points of each figure;
//! * [`legacy`] preserves the pre-optimisation hash-set incremental engine as
//!   a frozen baseline, and the `incsim_bench` binary compares it against the
//!   counter-backed engine, writing the machine-readable `BENCH_incsim.json`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
pub mod legacy;
pub mod report;
pub mod workloads;
