//! Rendering of experiment results as paper-style series.

use std::fmt;
use std::time::Instant;

/// One measured point of a figure: a named series (algorithm), an x-axis
/// label (graph size, pattern size, #updates, ...) and a value.
#[derive(Debug, Clone)]
pub struct Row {
    /// Series name, e.g. `"IncMatch"` or `"Matchs"`.
    pub series: String,
    /// X-axis label, e.g. `"|E|=84K"` or `"(4,4)"`.
    pub x: String,
    /// Measured value.
    pub value: f64,
    /// Unit of the value, e.g. `"ms"`, `"#matches"`, `"MB"`.
    pub unit: String,
}

impl Row {
    /// Creates a row.
    pub fn new(
        series: impl Into<String>,
        x: impl Into<String>,
        value: f64,
        unit: impl Into<String>,
    ) -> Self {
        Row { series: series.into(), x: x.into(), value, unit: unit.into() }
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:<28} {:<18} {:>12.3} {}", self.series, self.x, self.value, self.unit)
    }
}

/// Prints a figure's rows as an aligned table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n=== {title} ===");
    println!("{:<28} {:<18} {:>12} unit", "series", "x", "value");
    for row in rows {
        println!("{row}");
    }
}

/// Measures the wall-clock time of `f` in milliseconds and returns it together
/// with the closure's result.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (f64, T) {
    let start = Instant::now();
    let result = f();
    (start.elapsed().as_secs_f64() * 1e3, result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_formatting() {
        let row = Row::new("IncMatch", "|E|=84K", 12.5, "ms");
        let text = row.to_string();
        assert!(text.contains("IncMatch"));
        assert!(text.contains("12.500"));
        print_table("demo", &[row]);
    }

    #[test]
    fn time_ms_returns_value_and_positive_time() {
        let (ms, value) = time_ms(|| (0..1000).sum::<u64>());
        assert_eq!(value, 499_500);
        assert!(ms >= 0.0);
    }
}
