//! A dependency-free micro-benchmark harness.
//!
//! The build environment cannot fetch `criterion`, so the `cargo bench`
//! targets (`harness = false`) use this module instead: fixed sample counts,
//! per-sample setup (like criterion's `iter_batched`), and median/min/max
//! reporting. Medians are reported rather than means so a stray scheduler
//! hiccup cannot skew a comparison.

use std::time::Instant;

/// Timing summary of one benchmark routine.
#[derive(Debug, Clone)]
pub struct Summary {
    /// Benchmark name.
    pub name: String,
    /// Number of measured samples.
    pub samples: usize,
    /// Median sample duration in nanoseconds.
    pub median_ns: u128,
    /// Fastest sample in nanoseconds.
    pub min_ns: u128,
    /// Slowest sample in nanoseconds.
    pub max_ns: u128,
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<36} median {:>12.3} ms   (min {:>10.3}, max {:>10.3}, n={})",
            self.name,
            self.median_ns as f64 / 1e6,
            self.min_ns as f64 / 1e6,
            self.max_ns as f64 / 1e6,
            self.samples
        )
    }
}

/// Median of a list of durations in nanoseconds (0 for an empty list).
pub fn median_ns(mut durations: Vec<u128>) -> u128 {
    if durations.is_empty() {
        return 0;
    }
    durations.sort_unstable();
    durations[durations.len() / 2]
}

/// Throughput implied by `count` items processed in `ns` nanoseconds
/// (items per second; 0.0 for a zero duration).
pub fn updates_per_sec(count: usize, ns: u128) -> f64 {
    if ns == 0 {
        return 0.0;
    }
    count as f64 / (ns as f64 / 1e9)
}

/// Runs `routine` `samples` times, each on a fresh state produced by `setup`
/// (setup time is excluded), and prints + returns the summary.
pub fn bench_batched<S, T>(
    name: &str,
    samples: usize,
    mut setup: impl FnMut() -> S,
    mut routine: impl FnMut(S) -> T,
) -> Summary {
    assert!(samples > 0, "at least one sample required");
    let mut times = Vec::with_capacity(samples);
    for _ in 0..samples {
        let state = setup();
        let start = Instant::now();
        let result = routine(state);
        times.push(start.elapsed().as_nanos());
        drop(result);
    }
    let summary = Summary {
        name: name.to_string(),
        samples,
        median_ns: median_ns(times.clone()),
        min_ns: times.iter().copied().min().unwrap_or(0),
        max_ns: times.iter().copied().max().unwrap_or(0),
    };
    println!("{summary}");
    summary
}

/// Runs a setup-free routine `samples` times and reports the median.
pub fn bench<T>(name: &str, samples: usize, mut routine: impl FnMut() -> T) -> Summary {
    bench_batched(name, samples, || (), |()| routine())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn median_of_odd_and_even_lists() {
        assert_eq!(median_ns(vec![5, 1, 3]), 3);
        assert_eq!(median_ns(vec![4, 1, 3, 2]), 3);
        assert_eq!(median_ns(Vec::new()), 0);
    }

    #[test]
    fn throughput_conversion() {
        assert_eq!(updates_per_sec(1_000, 1_000_000_000), 1_000.0);
        assert_eq!(updates_per_sec(500, 500_000_000), 1_000.0);
        assert_eq!(updates_per_sec(10, 0), 0.0);
    }

    #[test]
    fn bench_measures_and_returns_all_samples() {
        let summary = bench("noop", 5, || 1 + 1);
        assert_eq!(summary.samples, 5);
        assert!(summary.min_ns <= summary.median_ns && summary.median_ns <= summary.max_ns);
    }

    #[test]
    fn batched_setup_is_not_measured() {
        let summary =
            bench_batched("setup_heavy", 3, || std::hint::black_box(vec![0u8; 1024]), |v| v.len());
        assert_eq!(summary.samples, 3);
    }
}
