//! Criterion bench for Fig. 16(b): bounded simulation `Match` vs `VF2`
//! subgraph isomorphism on the YouTube-like dataset, for a small and a larger
//! pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igpm_baseline::count_isomorphic_matches;
use igpm_bench::workloads as wl;
use igpm_core::match_bounded_with_bfs;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let graph = wl::youtube(0.03);
    let mut group = c.benchmark_group("fig16b_match_vs_vf2");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    for size in [3usize, 5] {
        let normal = wl::normal_pattern(&graph, size, size, 3, 1650 + size as u64);
        let bounded = wl::bounded_pattern(&graph, size, size, 3, 3, 1650 + size as u64);
        group.bench_with_input(BenchmarkId::new("VF2", size), &normal, |b, p| {
            b.iter(|| count_isomorphic_matches(p, &graph))
        });
        group.bench_with_input(BenchmarkId::new("Match_k1", size), &normal, |b, p| {
            b.iter(|| match_bounded_with_bfs(p, &graph))
        });
        group.bench_with_input(BenchmarkId::new("Match_k3", size), &bounded, |b, p| {
            b.iter(|| match_bounded_with_bfs(p, &graph))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
