//! Bench for Fig. 16(b): bounded simulation `Match` vs `VF2` subgraph
//! isomorphism on the YouTube-like dataset, for a small and a larger pattern.

use igpm_baseline::count_isomorphic_matches;
use igpm_bench::harness::bench;
use igpm_bench::workloads as wl;
use igpm_core::match_bounded_with_bfs;

fn main() {
    let graph = wl::youtube(0.03);
    let samples = 10;
    println!("# fig16b_match_vs_vf2 — YouTube-like, scale 0.03");
    for size in [3usize, 5] {
        let normal = wl::normal_pattern(&graph, size, size, 3, 1650 + size as u64);
        let bounded = wl::bounded_pattern(&graph, size, size, 3, 3, 1650 + size as u64);
        bench(&format!("VF2/{size}"), samples, || count_isomorphic_matches(&normal, &graph));
        bench(&format!("Match_k1/{size}"), samples, || match_bounded_with_bfs(&normal, &graph));
        bench(&format!("Match_k3/{size}"), samples, || match_bounded_with_bfs(&bounded, &graph));
    }
}
