//! Bench for Fig. 20(c,d,f): incremental landmark maintenance (`InsLM`,
//! `DelLM`, `IncLM`) against rebuilding the landmark and distance vectors from
//! scratch (`BatchLM`).

use igpm_bench::harness::{bench, bench_batched};
use igpm_bench::workloads as wl;
use igpm_distance::landmark_inc::{del_lm, inc_lm, ins_lm};
use igpm_distance::{LandmarkIndex, LandmarkSelection};
use igpm_generator::mixed_batch;
use igpm_graph::Update;

fn main() {
    let graph = wl::synthetic(1_500, 4_500, 0x20);
    let insertions = wl::insertions(&graph, 50, 0x2001);
    let deletions = wl::deletions(&graph, 50, 0x2002);
    let mixed = mixed_batch(&graph, 50, 50, 0x2003);
    let samples = 10;
    let fresh = || (graph.clone(), LandmarkIndex::build(&graph, LandmarkSelection::VertexCover));

    println!("# fig20_landmarks — |V|=1500, |E|=4500");
    bench("BatchLM_rebuild", samples, || {
        LandmarkIndex::build(&graph, LandmarkSelection::VertexCover)
    });
    bench_batched("InsLM_50_insertions", samples, fresh, |(mut g, mut index)| {
        for update in insertions.iter() {
            let (a, b) = update.endpoints();
            ins_lm(&mut index, &mut g, a, b);
        }
    });
    bench_batched("DelLM_50_deletions", samples, fresh, |(mut g, mut index)| {
        for update in deletions.iter() {
            let (a, b) = update.endpoints();
            del_lm(&mut index, &mut g, a, b);
        }
    });
    bench_batched("IncLM_100_mixed", samples, fresh, |(mut g, mut index)| {
        inc_lm(&mut index, &mut g, &mixed);
    });
    bench_batched("InsLM_DelLM_naive_100_mixed", samples, fresh, |(mut g, mut index)| {
        for update in mixed.iter() {
            match *update {
                Update::InsertEdge { from, to } => {
                    ins_lm(&mut index, &mut g, from, to);
                }
                Update::DeleteEdge { from, to } => {
                    del_lm(&mut index, &mut g, from, to);
                }
            }
        }
    });
}
