//! Criterion bench for Fig. 20(c,d,f): incremental landmark maintenance
//! (`InsLM`, `DelLM`, `IncLM`) against rebuilding the landmark and distance
//! vectors from scratch (`BatchLM`).

use criterion::{criterion_group, criterion_main, Criterion};
use igpm_bench::workloads as wl;
use igpm_distance::landmark_inc::{del_lm, inc_lm, ins_lm};
use igpm_distance::{LandmarkIndex, LandmarkSelection};
use igpm_generator::mixed_batch;
use igpm_graph::Update;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let graph = wl::synthetic(1_500, 4_500, 0x20);
    let insertions = wl::insertions(&graph, 50, 0x2001);
    let deletions = wl::deletions(&graph, 50, 0x2002);
    let mixed = mixed_batch(&graph, 50, 50, 0x2003);

    let mut group = c.benchmark_group("fig20_landmarks");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));

    group.bench_function("BatchLM_rebuild", |b| {
        b.iter(|| LandmarkIndex::build(&graph, LandmarkSelection::VertexCover))
    });
    group.bench_function("InsLM_50_insertions", |b| {
        b.iter_batched(
            || (graph.clone(), LandmarkIndex::build(&graph, LandmarkSelection::VertexCover)),
            |(mut g, mut index)| {
                for update in insertions.iter() {
                    let (a, b2) = update.endpoints();
                    ins_lm(&mut index, &mut g, a, b2);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("DelLM_50_deletions", |b| {
        b.iter_batched(
            || (graph.clone(), LandmarkIndex::build(&graph, LandmarkSelection::VertexCover)),
            |(mut g, mut index)| {
                for update in deletions.iter() {
                    let (a, b2) = update.endpoints();
                    del_lm(&mut index, &mut g, a, b2);
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("IncLM_100_mixed", |b| {
        b.iter_batched(
            || (graph.clone(), LandmarkIndex::build(&graph, LandmarkSelection::VertexCover)),
            |(mut g, mut index)| inc_lm(&mut index, &mut g, &mixed),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("InsLM_DelLM_naive_100_mixed", |b| {
        b.iter_batched(
            || (graph.clone(), LandmarkIndex::build(&graph, LandmarkSelection::VertexCover)),
            |(mut g, mut index)| {
                for update in mixed.iter() {
                    match *update {
                        Update::InsertEdge { from, to } => {
                            ins_lm(&mut index, &mut g, from, to);
                        }
                        Update::DeleteEdge { from, to } => {
                            del_lm(&mut index, &mut g, from, to);
                        }
                    }
                }
            },
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
