//! Bench for Fig. 18: incremental simulation (`IncMatch`) against batch
//! recomputation (`Matchs`), the naive per-update loop (`IncMatchn`), the
//! HORNSAT baseline, and the frozen pre-optimisation hash-set engine, on a
//! synthetic graph with a mixed update batch.

use igpm_baseline::{apply_batch_naive, HornSatSimulation};
use igpm_bench::harness::bench_batched;
use igpm_bench::legacy::LegacySimulationIndex;
use igpm_bench::workloads as wl;
use igpm_core::{match_simulation, SimulationIndex};
use igpm_generator::mixed_batch;

fn main() {
    let graph = wl::synthetic(2_000, 9_000, 0x18);
    let pattern = wl::normal_pattern(&graph, 4, 5, 3, 0x18aa);
    let batch = mixed_batch(&graph, 100, 100, 0x1801);
    let mut updated = graph.clone();
    batch.apply(&mut updated);
    let samples = 10;

    println!("# fig18_incsim — |V|=2000, |E|=9000, |ΔG|=200 mixed");
    bench_batched("Matchs_batch", samples, || (), |()| match_simulation(&pattern, &updated));
    bench_batched(
        "IncMatch",
        samples,
        || (graph.clone(), SimulationIndex::build(&pattern, &graph)),
        |(mut g, mut index)| index.apply_batch(&mut g, &batch),
    );
    bench_batched(
        "IncMatch_legacy_hashset",
        samples,
        || (graph.clone(), LegacySimulationIndex::build(&pattern, &graph)),
        |(mut g, mut index)| index.apply_batch(&mut g, &batch),
    );
    bench_batched(
        "IncMatchn_naive",
        samples,
        || (graph.clone(), SimulationIndex::build(&pattern, &graph)),
        |(mut g, mut index)| apply_batch_naive(&mut index, &mut g, &batch),
    );
    bench_batched(
        "HornSat",
        samples,
        || (graph.clone(), HornSatSimulation::build(&pattern, &graph)),
        |(mut g, mut horn)| horn.apply_batch(&mut g, &batch),
    );
}
