//! Criterion bench for Fig. 18: incremental simulation (`IncMatch`) against
//! batch recomputation (`Matchs`), the naive per-update loop (`IncMatchn`) and
//! the HORNSAT baseline, on a synthetic graph with a mixed update batch.

use criterion::{criterion_group, criterion_main, Criterion};
use igpm_baseline::{apply_batch_naive, HornSatSimulation};
use igpm_bench::workloads as wl;
use igpm_core::{match_simulation, SimulationIndex};
use igpm_generator::mixed_batch;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let graph = wl::synthetic(2_000, 9_000, 0x18);
    let pattern = wl::normal_pattern(&graph, 4, 5, 3, 0x18aa);
    let batch = mixed_batch(&graph, 100, 100, 0x1801);
    let mut updated = graph.clone();
    batch.apply(&mut updated);

    let mut group = c.benchmark_group("fig18_incsim");
    group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
    group.bench_function("Matchs_batch", |b| b.iter(|| match_simulation(&pattern, &updated)));
    group.bench_function("IncMatch", |b| {
        b.iter_batched(
            || (graph.clone(), SimulationIndex::build(&pattern, &graph)),
            |(mut g, mut index)| index.apply_batch(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("IncMatchn_naive", |b| {
        b.iter_batched(
            || (graph.clone(), SimulationIndex::build(&pattern, &graph)),
            |(mut g, mut index)| apply_batch_naive(&mut index, &mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("HornSat", |b| {
        b.iter_batched(
            || (graph.clone(), HornSatSimulation::build(&pattern, &graph)),
            |(mut g, mut horn)| horn.apply_batch(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
