//! Bench for Fig. 19: incremental bounded simulation (`IncBMatch`) against
//! batch recomputation (`Matchbs`) and the distance-matrix variant
//! (`IncBMatchm`).

use igpm_baseline::MatrixBoundedIndex;
use igpm_bench::harness::bench_batched;
use igpm_bench::workloads as wl;
use igpm_core::{match_bounded_with_matrix, BoundedIndex};
use igpm_generator::mixed_batch;

fn main() {
    let graph = wl::synthetic(1_200, 6_000, 0x19);
    let pattern = wl::dag_bounded_pattern(&graph, 4, 5, 3, 3, 0x19aa);
    let batch = mixed_batch(&graph, 40, 40, 0x1901);
    let mut updated = graph.clone();
    batch.apply(&mut updated);
    let samples = 10;

    println!("# fig19_incbsim — |V|=1200, |E|=6000, |ΔG|=80 mixed");
    bench_batched(
        "Matchbs_batch",
        samples,
        || (),
        |()| match_bounded_with_matrix(&pattern, &updated),
    );
    bench_batched(
        "IncBMatch",
        samples,
        || (graph.clone(), BoundedIndex::build(&pattern, &graph)),
        |(mut g, mut index)| index.apply_batch(&mut g, &batch),
    );
    bench_batched(
        "IncBMatchm_matrix",
        samples,
        || (graph.clone(), MatrixBoundedIndex::build(&pattern, &graph)),
        |(mut g, mut index)| index.apply_batch(&mut g, &batch),
    );
}
