//! Criterion bench for Fig. 19: incremental bounded simulation (`IncBMatch`)
//! against batch recomputation (`Matchbs`) and the distance-matrix variant
//! (`IncBMatchm`).

use criterion::{criterion_group, criterion_main, Criterion};
use igpm_baseline::MatrixBoundedIndex;
use igpm_bench::workloads as wl;
use igpm_core::{match_bounded_with_matrix, BoundedIndex};
use igpm_generator::mixed_batch;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let graph = wl::synthetic(1_200, 6_000, 0x19);
    let pattern = wl::dag_bounded_pattern(&graph, 4, 5, 3, 3, 0x19aa);
    let batch = mixed_batch(&graph, 40, 40, 0x1901);
    let mut updated = graph.clone();
    batch.apply(&mut updated);

    let mut group = c.benchmark_group("fig19_incbsim");
    group.sample_size(10).measurement_time(Duration::from_secs(3)).warm_up_time(Duration::from_millis(500));
    group.bench_function("Matchbs_batch", |b| b.iter(|| match_bounded_with_matrix(&pattern, &updated)));
    group.bench_function("IncBMatch", |b| {
        b.iter_batched(
            || (graph.clone(), BoundedIndex::build(&pattern, &graph)),
            |(mut g, mut index)| index.apply_batch(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.bench_function("IncBMatchm_matrix", |b| {
        b.iter_batched(
            || (graph.clone(), MatrixBoundedIndex::build(&pattern, &graph)),
            |(mut g, mut index)| index.apply_batch(&mut g, &batch),
            criterion::BatchSize::LargeInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
