//! Bench for Fig. 17(a,b): `Match` with the three distance oracles
//! (pre-built matrix, 2-hop labels, on-demand BFS) on the dataset substitutes.

use igpm_bench::harness::bench;
use igpm_bench::workloads as wl;
use igpm_core::match_bounded;
use igpm_distance::{BfsOracle, DistanceMatrix, TwoHopLabels};

fn main() {
    let samples = 10;
    for (name, graph) in [("youtube", wl::youtube(0.03)), ("citation", wl::citation(0.03))] {
        let matrix = DistanceMatrix::build(&graph);
        let two_hop = TwoHopLabels::build(&graph);
        let pattern = wl::bounded_pattern(&graph, 4, 6, 3, 3, 1720);
        println!("# fig17_oracles_{name} — pattern (4,6,3), k=3");
        bench(&format!("matrix_match/{name}"), samples, || {
            match_bounded(&pattern, &graph, &matrix)
        });
        bench(&format!("two_hop_match/{name}"), samples, || {
            match_bounded(&pattern, &graph, &two_hop)
        });
        bench(&format!("bfs_match/{name}"), samples, || {
            let oracle = BfsOracle::with_cache(&graph, 4096);
            match_bounded(&pattern, &graph, &oracle)
        });
    }
}
