//! Criterion bench for Fig. 17(a,b): `Match` with the three distance oracles
//! (pre-built matrix, 2-hop labels, on-demand BFS) on the dataset substitutes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use igpm_bench::workloads as wl;
use igpm_core::match_bounded;
use igpm_distance::{BfsOracle, DistanceMatrix, TwoHopLabels};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    for (name, graph) in [("youtube", wl::youtube(0.03)), ("citation", wl::citation(0.03))] {
        let matrix = DistanceMatrix::build(&graph);
        let two_hop = TwoHopLabels::build(&graph);
        let pattern = wl::bounded_pattern(&graph, 4, 6, 3, 3, 1720);
        let mut group = c.benchmark_group(format!("fig17_oracles_{name}"));
        group.sample_size(10).measurement_time(Duration::from_secs(2)).warm_up_time(Duration::from_millis(500));
        group.bench_function(BenchmarkId::new("matrix_match", "(4,6,3)"), |b| {
            b.iter(|| match_bounded(&pattern, &graph, &matrix))
        });
        group.bench_function(BenchmarkId::new("two_hop_match", "(4,6,3)"), |b| {
            b.iter(|| match_bounded(&pattern, &graph, &two_hop))
        });
        group.bench_function(BenchmarkId::new("bfs_match", "(4,6,3)"), |b| {
            b.iter(|| {
                let oracle = BfsOracle::with_cache(&graph, 4096);
                match_bounded(&pattern, &graph, &oracle)
            })
        });
        group.finish();
    }
}

criterion_group!(benches, bench);
criterion_main!(benches);
