//! Update workloads `ΔG`.
//!
//! Section 8.2: "Updates were selected following the densification law
//! [Leskovec et al. 2007]: we selected nodes with larger degree with higher
//! probability for edge deletion (resp. insertion) if they are (resp. not)
//! connected." For the real-life experiments the updates are "the differences
//! between snapshots w.r.t. the age (resp. year) attribute", which
//! [`evolution_split`] reconstructs from the timestamp attributes of the
//! generated datasets.

use igpm_graph::{AttrValue, BatchUpdate, DataGraph, NodeId, Update};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration shared by the random update generators.
#[derive(Debug, Clone, Copy)]
pub struct UpdateGenConfig {
    /// Number of unit updates to produce.
    pub count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl UpdateGenConfig {
    /// Creates a configuration.
    pub fn new(count: usize, seed: u64) -> Self {
        UpdateGenConfig { count, seed }
    }
}

/// Builds a degree-weighted sampling pool: each node appears once per incident
/// edge (plus once unconditionally so isolated nodes stay reachable).
fn degree_pool(graph: &DataGraph) -> Vec<u32> {
    let mut pool = Vec::with_capacity(graph.node_count() + 2 * graph.edge_count());
    for v in graph.nodes() {
        pool.push(v.0);
        for _ in 0..graph.degree(v) {
            pool.push(v.0);
        }
    }
    pool
}

/// Generates `config.count` edge insertions whose endpoints are chosen with
/// probability proportional to node degree, avoiding existing edges and
/// duplicates within the batch.
pub fn degree_biased_insertions(graph: &DataGraph, config: UpdateGenConfig) -> BatchUpdate {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let pool = degree_pool(graph);
    let mut batch = BatchUpdate::new();
    let mut chosen = igpm_graph::hash::set_with_capacity::<(u32, u32)>(config.count);
    let mut attempts = 0usize;
    let max_attempts = config.count * 50 + 1000;
    while batch.len() < config.count && attempts < max_attempts {
        attempts += 1;
        let from = NodeId(pool[rng.gen_range(0..pool.len())]);
        let to = NodeId(pool[rng.gen_range(0..pool.len())]);
        if from == to || graph.has_edge(from, to) || !chosen.insert((from.0, to.0)) {
            continue;
        }
        batch.insert(from, to);
    }
    batch
}

/// Generates `config.count` edge deletions, preferring edges incident to
/// high-degree nodes, without repeating an edge within the batch.
pub fn degree_biased_deletions(graph: &DataGraph, config: UpdateGenConfig) -> BatchUpdate {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    if edges.is_empty() {
        return BatchUpdate::new();
    }
    // Weight each edge by the combined degree of its endpoints.
    let weights: Vec<usize> =
        edges.iter().map(|&(a, b)| graph.degree(a) + graph.degree(b)).collect();
    let total: usize = weights.iter().sum();
    let mut batch = BatchUpdate::new();
    let mut chosen = igpm_graph::hash::set_with_capacity::<(u32, u32)>(config.count);
    let mut attempts = 0usize;
    let max_attempts = config.count * 50 + 1000;
    while batch.len() < config.count.min(edges.len()) && attempts < max_attempts {
        attempts += 1;
        // Weighted pick by cumulative scan over a random threshold.
        let mut threshold = rng.gen_range(0..total.max(1));
        let mut picked = edges.len() - 1;
        for (i, w) in weights.iter().enumerate() {
            if threshold < *w {
                picked = i;
                break;
            }
            threshold -= w;
        }
        let (from, to) = edges[picked];
        if !chosen.insert((from.0, to.0)) {
            continue;
        }
        batch.delete(from, to);
    }
    batch
}

/// Generates a mixed batch of `insertions` insertions and `deletions`
/// deletions, interleaved in a random order.
pub fn mixed_batch(
    graph: &DataGraph,
    insertions: usize,
    deletions: usize,
    seed: u64,
) -> BatchUpdate {
    let ins = degree_biased_insertions(graph, UpdateGenConfig::new(insertions, seed));
    let del = degree_biased_deletions(graph, UpdateGenConfig::new(deletions, seed.wrapping_add(1)));
    let mut all: Vec<Update> = ins.into_iter().chain(del).collect();
    // Deterministic shuffle.
    let mut rng = StdRng::seed_from_u64(seed.wrapping_add(2));
    for i in (1..all.len()).rev() {
        let j = rng.gen_range(0..=i);
        all.swap(i, j);
    }
    all.into_iter().collect()
}

/// Splits a timestamped graph into an older base graph and the batch of edge
/// insertions that turns it back into the full graph.
///
/// Each edge is dated by the `time_attr` attribute of its *source* node (the
/// newly added video / newly published paper is the one creating the link).
/// The newest `fraction` of edges become the insertion batch; the base graph
/// keeps all nodes and the remaining edges. This reconstructs the
/// snapshot-evolution workloads of Figures 18(c,d) and 19(c,d).
pub fn evolution_split(
    graph: &DataGraph,
    fraction: f64,
    time_attr: &str,
) -> (DataGraph, BatchUpdate) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
    let timestamp = |v: NodeId| -> i64 {
        match graph.attrs(v).get(time_attr) {
            Some(AttrValue::Int(t)) => *t,
            Some(AttrValue::Float(t)) => *t as i64,
            _ => 0,
        }
    };
    let mut edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    edges.sort_by_key(|&(from, to)| (timestamp(from), from.0, to.0));
    let cutoff = edges.len() - ((edges.len() as f64) * fraction).round() as usize;

    let mut base = DataGraph::with_capacity(graph.node_count(), cutoff);
    for v in graph.nodes() {
        base.add_node(graph.attrs(v).clone());
    }
    for &(from, to) in &edges[..cutoff] {
        base.add_edge(from, to);
    }
    let mut batch = BatchUpdate::new();
    for &(from, to) in &edges[cutoff..] {
        batch.insert(from, to);
    }
    (base, batch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::citation::{citation_like, CitationConfig};
    use crate::synthetic::{synthetic_graph, SyntheticConfig};

    fn data() -> DataGraph {
        synthetic_graph(&SyntheticConfig::new(400, 1600, 5, 23))
    }

    #[test]
    fn insertions_are_new_distinct_edges() {
        let g = data();
        let batch = degree_biased_insertions(&g, UpdateGenConfig::new(200, 1));
        assert_eq!(batch.len(), 200);
        let mut seen = std::collections::HashSet::new();
        for update in batch.iter() {
            assert!(update.is_insert());
            let (from, to) = update.endpoints();
            assert!(!g.has_edge(from, to), "insertion of an existing edge");
            assert!(seen.insert((from, to)), "duplicate insertion");
        }
    }

    #[test]
    fn deletions_are_existing_distinct_edges() {
        let g = data();
        let batch = degree_biased_deletions(&g, UpdateGenConfig::new(150, 2));
        assert_eq!(batch.len(), 150);
        let mut seen = std::collections::HashSet::new();
        for update in batch.iter() {
            assert!(update.is_delete());
            let (from, to) = update.endpoints();
            assert!(g.has_edge(from, to), "deleting a missing edge");
            assert!(seen.insert((from, to)), "duplicate deletion");
        }
    }

    #[test]
    fn insertions_prefer_high_degree_endpoints() {
        let g = data();
        let batch = degree_biased_insertions(&g, UpdateGenConfig::new(500, 3));
        let avg_graph_degree: f64 =
            g.nodes().map(|v| g.degree(v) as f64).sum::<f64>() / g.node_count() as f64;
        let avg_endpoint_degree: f64 = batch
            .iter()
            .map(|u| {
                let (a, b) = u.endpoints();
                (g.degree(a) + g.degree(b)) as f64 / 2.0
            })
            .sum::<f64>()
            / batch.len() as f64;
        assert!(
            avg_endpoint_degree > avg_graph_degree,
            "degree bias missing: {avg_endpoint_degree:.2} <= {avg_graph_degree:.2}"
        );
    }

    #[test]
    fn mixed_batch_counts_and_determinism() {
        let g = data();
        let batch = mixed_batch(&g, 40, 30, 7);
        assert_eq!(batch.insertion_count(), 40);
        assert_eq!(batch.deletion_count(), 30);
        assert_eq!(batch, mixed_batch(&g, 40, 30, 7));
    }

    #[test]
    fn applying_generated_updates_changes_the_graph_as_expected() {
        let g = data();
        let mut updated = g.clone();
        let ins = degree_biased_insertions(&g, UpdateGenConfig::new(50, 4));
        let changed = ins.apply(&mut updated);
        assert_eq!(changed, 50);
        assert_eq!(updated.edge_count(), g.edge_count() + 50);
    }

    #[test]
    fn evolution_split_reconstructs_the_full_graph() {
        let g = citation_like(&CitationConfig::scaled(0.02, 5));
        let (mut base, batch) = evolution_split(&g, 0.2, "year");
        assert_eq!(base.node_count(), g.node_count());
        assert_eq!(base.edge_count() + batch.len(), g.edge_count());
        assert!(!batch.is_empty());
        batch.apply(&mut base);
        assert_eq!(base, g);
    }

    #[test]
    fn evolution_split_orders_by_time() {
        let g = citation_like(&CitationConfig::scaled(0.02, 6));
        let (_, batch) = evolution_split(&g, 0.1, "year");
        let year = |v: NodeId| match g.attrs(v).get("year") {
            Some(AttrValue::Int(y)) => *y,
            _ => 0,
        };
        let min_inserted = batch.iter().map(|u| year(u.endpoints().0)).min().unwrap();
        // All inserted (newest) edges must come from the newer half of the years.
        let median_year = {
            let mut years: Vec<i64> = g.nodes().map(year).collect();
            years.sort_unstable();
            years[years.len() / 2]
        };
        assert!(min_inserted >= median_year - 2, "newest edges should be recent");
    }

    #[test]
    fn zero_fraction_split_keeps_everything() {
        let g = data();
        let (base, batch) = evolution_split(&g, 0.0, "weight");
        assert!(batch.is_empty());
        assert_eq!(base.edge_count(), g.edge_count());
    }
}
