//! Synthetic data graphs following the densification law.
//!
//! The paper's synthetic graphs are produced with "the Java boost graph
//! generator ... with 3 parameters: the number of nodes, the number of edges,
//! and a set of node attributes", and evolve "following the densification law
//! [Leskovec et al. 2007] and linkage generation models [Garg et al. 2009]"
//! (Section 8.1). We reproduce that with a seeded preferential-attachment
//! process: node degrees are skewed (high-degree hubs attract new edges),
//! `|E| = |V|^α` when the `alpha` form of the configuration is used, and node
//! attributes are drawn from a configurable label alphabet plus an integer
//! `weight` attribute so patterns can carry non-label predicates.

use igpm_graph::{Attributes, DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the synthetic graph generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of nodes `|V|`.
    pub nodes: usize,
    /// Number of edges `|E|`.
    pub edges: usize,
    /// Size of the label alphabet; labels are named `l0`, `l1`, ....
    pub label_count: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A graph with `nodes` nodes and `edges` edges over `label_count` labels.
    pub fn new(nodes: usize, edges: usize, label_count: usize, seed: u64) -> Self {
        SyntheticConfig { nodes, edges, label_count, seed }
    }

    /// A graph following the densification law `|E| = |V|^alpha`
    /// (Fig. 20(a) varies `alpha` between 1.0 and 1.2).
    pub fn densification(nodes: usize, alpha: f64, label_count: usize, seed: u64) -> Self {
        let edges = (nodes as f64).powf(alpha).round() as usize;
        SyntheticConfig { nodes, edges, label_count, seed }
    }
}

/// Generates a synthetic graph according to `config`.
///
/// The process combines a random spanning backbone (so the graph is not a
/// collection of isolated hubs) with preferential attachment for the remaining
/// edges, which yields the skewed in/out-degree distributions of real social
/// and web graphs that the paper's update generator relies on.
pub fn synthetic_graph(config: &SyntheticConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut graph = DataGraph::with_capacity(n, config.edges);

    for i in 0..n {
        let label = format!("l{}", rng.gen_range(0..config.label_count.max(1)));
        let weight = rng.gen_range(0..1000i64);
        let attrs = Attributes::labeled(label).with("weight", weight).with("uid", i as i64);
        graph.add_node(attrs);
    }
    if n == 0 {
        return graph;
    }

    // Backbone: connect node i to a random earlier node, giving a weakly
    // connected skeleton and a first bias towards early (soon high-degree) nodes.
    for i in 1..n {
        let target = rng.gen_range(0..i);
        if rng.gen_bool(0.5) {
            graph.add_edge(NodeId(i as u32), NodeId(target as u32));
        } else {
            graph.add_edge(NodeId(target as u32), NodeId(i as u32));
        }
    }

    // Preferential attachment for the remaining edges: endpoints are sampled
    // from a pool that repeats nodes once per incident edge (the classic
    // Barabási–Albert trick), which follows the linkage-generation model of
    // Garg et al. where well-connected nodes keep acquiring links.
    let mut endpoint_pool: Vec<u32> = Vec::with_capacity(config.edges * 2);
    for (from, to) in graph.edges() {
        endpoint_pool.push(from.0);
        endpoint_pool.push(to.0);
    }
    let mut attempts = 0usize;
    let max_attempts = config.edges * 20 + 1000;
    while graph.edge_count() < config.edges && attempts < max_attempts {
        attempts += 1;
        let from = if rng.gen_bool(0.7) && !endpoint_pool.is_empty() {
            endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
        } else {
            rng.gen_range(0..n) as u32
        };
        let to = if rng.gen_bool(0.7) && !endpoint_pool.is_empty() {
            endpoint_pool[rng.gen_range(0..endpoint_pool.len())]
        } else {
            rng.gen_range(0..n) as u32
        };
        if from == to {
            continue;
        }
        if graph.add_edge(NodeId(from), NodeId(to)) {
            endpoint_pool.push(from);
            endpoint_pool.push(to);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn respects_node_and_edge_counts() {
        let config = SyntheticConfig::new(500, 1500, 10, 42);
        let g = synthetic_graph(&config);
        assert_eq!(g.node_count(), 500);
        assert_eq!(g.edge_count(), 1500);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let config = SyntheticConfig::new(200, 600, 5, 7);
        let a = synthetic_graph(&config);
        let b = synthetic_graph(&config);
        assert_eq!(a, b);
        let c = synthetic_graph(&SyntheticConfig::new(200, 600, 5, 8));
        assert_ne!(a, c, "different seeds give different graphs");
    }

    #[test]
    fn densification_law_sets_edge_count() {
        let config = SyntheticConfig::densification(1000, 1.1, 8, 1);
        assert_eq!(config.edges, (1000f64.powf(1.1)).round() as usize);
        let g = synthetic_graph(&config);
        assert_eq!(g.edge_count(), config.edges);
    }

    #[test]
    fn nodes_carry_label_weight_and_uid() {
        let g = synthetic_graph(&SyntheticConfig::new(50, 100, 4, 3));
        for v in g.nodes() {
            let attrs = g.attrs(v);
            assert!(attrs.label().unwrap().starts_with('l'));
            assert!(attrs.get("weight").is_some());
            assert_eq!(attrs.get("uid"), Some(&igpm_graph::AttrValue::Int(v.index() as i64)));
        }
    }

    #[test]
    fn degree_distribution_is_skewed() {
        let g = synthetic_graph(&SyntheticConfig::new(2000, 8000, 10, 11));
        let mut degrees: Vec<usize> = g.nodes().map(|v| g.degree(v)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top1pct: usize = degrees.iter().take(20).sum();
        let total: usize = degrees.iter().sum();
        // Under a uniform degree distribution the top 1% of nodes would hold
        // ~1% of the degree mass; preferential attachment should at least
        // triple that share.
        assert!(
            top1pct * 100 / total >= 3,
            "top 1% of nodes should hold a disproportionate share of edges (got {}%)",
            top1pct * 100 / total
        );
    }

    #[test]
    fn tiny_and_empty_graphs() {
        let g = synthetic_graph(&SyntheticConfig::new(0, 0, 1, 1));
        assert_eq!(g.node_count(), 0);
        let g = synthetic_graph(&SyntheticConfig::new(1, 5, 1, 1));
        assert_eq!(g.node_count(), 1);
        assert_eq!(g.edge_count(), 0, "single node cannot host non-loop edges");
    }
}
