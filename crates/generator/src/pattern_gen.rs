//! Pattern generator.
//!
//! Section 8.1(3): "We designed a generator to produce meaningful pattern
//! graphs for both real-life and synthetic data, controlled by 4 parameters:
//! the number of nodes |V_p|, the number of edges |E_p|, the average number
//! |pred| of predicates carried by each node, and an upper bound k such that
//! each pattern edge has a bound k' with k − c ≤ k' ≤ k, for a small constant
//! c."
//!
//! To keep the generated patterns *meaningful* (i.e. likely to have matches),
//! every pattern node's predicate is seeded from an actual data node: the
//! first atom is a label-equality test and the remaining atoms are range tests
//! that the seed node satisfies. Edge structure is a random spanning tree plus
//! extra edges, shaped as a tree, DAG or general (possibly cyclic) graph.

use igpm_graph::{
    AttrValue, CompareOp, DataGraph, EdgeBound, NodeId, Pattern, PatternNodeId, Predicate,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The topology class of generated patterns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternShape {
    /// Arbitrary (possibly cyclic) patterns.
    General,
    /// Directed acyclic patterns (required by `IncMatch+dag` / `IncBMatchm`).
    Dag,
    /// Tree patterns (used by the incremental subgraph-isomorphism analysis).
    Tree,
}

/// Configuration of the pattern generator: `(|V_p|, |E_p|, |pred|, k)` plus
/// shape controls.
#[derive(Debug, Clone)]
pub struct PatternGenConfig {
    /// Number of pattern nodes `|V_p|`.
    pub nodes: usize,
    /// Number of pattern edges `|E_p|` (clamped to keep the pattern simple and
    /// connected).
    pub edges: usize,
    /// Average number of predicates per node `|pred|` (at least 1: the label).
    pub preds_per_node: usize,
    /// Upper bound `k` on pattern-edge bounds.
    pub max_bound: u32,
    /// Bounds are drawn uniformly from `[max(1, k - c), k]`.
    pub bound_variation: u32,
    /// Probability that an edge carries the unbounded symbol `*` instead of a
    /// finite bound (0.0 reproduces the paper's generator exactly).
    pub unbounded_prob: f64,
    /// Topology class.
    pub shape: PatternShape,
    /// RNG seed.
    pub seed: u64,
}

impl PatternGenConfig {
    /// The paper's `(|V_p|, |E_p|, |pred|, k)` parameterisation with defaults
    /// for the remaining knobs.
    pub fn new(
        nodes: usize,
        edges: usize,
        preds_per_node: usize,
        max_bound: u32,
        seed: u64,
    ) -> Self {
        PatternGenConfig {
            nodes,
            edges,
            preds_per_node,
            max_bound,
            bound_variation: 1,
            unbounded_prob: 0.0,
            shape: PatternShape::General,
            seed,
        }
    }

    /// A *normal* pattern (every bound is 1), as used by graph simulation and
    /// subgraph isomorphism.
    pub fn normal(nodes: usize, edges: usize, preds_per_node: usize, seed: u64) -> Self {
        let mut config = Self::new(nodes, edges, preds_per_node, 1, seed);
        config.bound_variation = 0;
        config
    }

    /// Restricts the topology.
    pub fn with_shape(mut self, shape: PatternShape) -> Self {
        self.shape = shape;
        self
    }

    /// Sets the probability of `*` edges.
    pub fn with_unbounded_prob(mut self, prob: f64) -> Self {
        self.unbounded_prob = prob;
        self
    }
}

/// Generates a pattern whose predicates are satisfiable in `graph`.
pub fn generate_pattern(graph: &DataGraph, config: &PatternGenConfig) -> Pattern {
    assert!(config.nodes >= 1, "patterns need at least one node");
    assert!(graph.node_count() >= 1, "cannot seed predicates from an empty graph");
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut pattern = Pattern::new();

    // Seed each pattern node's predicate from a random data node.
    for _ in 0..config.nodes {
        let seed_node = NodeId(rng.gen_range(0..graph.node_count()) as u32);
        let predicate = predicate_from_node(graph, seed_node, config.preds_per_node, &mut rng);
        pattern.add_node(predicate);
    }

    // Spanning tree for connectivity.
    let mut edge_budget = config.edges;
    for i in 1..config.nodes {
        if edge_budget == 0 {
            break;
        }
        let parent = rng.gen_range(0..i);
        let (from, to) = match config.shape {
            PatternShape::Tree | PatternShape::Dag => (parent, i),
            PatternShape::General => {
                if rng.gen_bool(0.5) {
                    (parent, i)
                } else {
                    (i, parent)
                }
            }
        };
        pattern.add_edge(
            PatternNodeId::from_index(from),
            PatternNodeId::from_index(to),
            sample_bound(config, &mut rng),
        );
        edge_budget -= 1;
    }

    // Extra edges beyond the tree (trees stop here by definition).
    if config.shape != PatternShape::Tree {
        let mut attempts = 0usize;
        while edge_budget > 0 && attempts < config.edges * 30 + 100 {
            attempts += 1;
            let a = rng.gen_range(0..config.nodes);
            let b = rng.gen_range(0..config.nodes);
            if a == b {
                continue;
            }
            let (from, to) = match config.shape {
                PatternShape::Dag => (a.min(b), a.max(b)),
                _ => (a, b),
            };
            let (from, to) = (PatternNodeId::from_index(from), PatternNodeId::from_index(to));
            if pattern.edge_bound(from, to).is_some() {
                continue;
            }
            pattern.add_edge(from, to, sample_bound(config, &mut rng));
            edge_budget -= 1;
        }
    }
    pattern
}

fn sample_bound(config: &PatternGenConfig, rng: &mut StdRng) -> EdgeBound {
    if config.unbounded_prob > 0.0 && rng.gen_bool(config.unbounded_prob) {
        return EdgeBound::Unbounded;
    }
    let hi = config.max_bound.max(1);
    let lo = hi.saturating_sub(config.bound_variation).max(1);
    EdgeBound::Hops(rng.gen_range(lo..=hi))
}

/// Builds a predicate satisfied by `seed`, with one label atom and up to
/// `preds - 1` range atoms over the seed's numeric attributes.
fn predicate_from_node(
    graph: &DataGraph,
    seed: NodeId,
    preds: usize,
    rng: &mut StdRng,
) -> Predicate {
    let attrs = graph.attrs(seed);
    let mut predicate = match attrs.label() {
        Some(label) => Predicate::label(label),
        None => Predicate::any(),
    };
    if preds <= 1 {
        return predicate;
    }
    let numeric: Vec<(&str, i64)> = attrs
        .iter()
        .filter_map(|(name, value)| match value {
            AttrValue::Int(v) if name != "uid" => Some((name, *v)),
            _ => None,
        })
        .collect();
    if numeric.is_empty() {
        return predicate;
    }
    for _ in 0..preds - 1 {
        let (name, value) = numeric[rng.gen_range(0..numeric.len())];
        // A one-sided range the seed satisfies, loose enough to keep the
        // predicate selective but not empty.
        let slack = (value.abs() / 4).max(1);
        if rng.gen_bool(0.5) {
            predicate = predicate.and(name, CompareOp::Le, value + slack);
        } else {
            predicate = predicate.and(name, CompareOp::Ge, value - slack);
        }
    }
    predicate
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{synthetic_graph, SyntheticConfig};
    use crate::youtube::{youtube_like, YouTubeConfig};

    fn data() -> DataGraph {
        synthetic_graph(&SyntheticConfig::new(300, 900, 6, 17))
    }

    #[test]
    fn respects_node_and_edge_counts() {
        let g = data();
        let config = PatternGenConfig::new(5, 7, 2, 3, 1);
        let p = generate_pattern(&g, &config);
        assert_eq!(p.node_count(), 5);
        assert_eq!(p.edge_count(), 7);
    }

    #[test]
    fn normal_patterns_have_unit_bounds() {
        let g = data();
        let p = generate_pattern(&g, &PatternGenConfig::normal(4, 5, 3, 2));
        assert!(p.is_normal());
    }

    #[test]
    fn bounds_respect_the_k_window() {
        let g = data();
        let mut config = PatternGenConfig::new(6, 9, 2, 4, 3);
        config.bound_variation = 1;
        let p = generate_pattern(&g, &config);
        for edge in p.edges() {
            match edge.bound {
                EdgeBound::Hops(k) => assert!((3..=4).contains(&k), "bound {k} outside [3, 4]"),
                EdgeBound::Unbounded => panic!("no * edges requested"),
            }
        }
    }

    #[test]
    fn unbounded_edges_appear_when_requested() {
        let g = data();
        let config = PatternGenConfig::new(6, 12, 2, 3, 4).with_unbounded_prob(1.0);
        let p = generate_pattern(&g, &config);
        assert!(p.edges().iter().all(|e| e.bound == EdgeBound::Unbounded));
    }

    #[test]
    fn dag_and_tree_shapes() {
        let g = data();
        let dag = generate_pattern(
            &g,
            &PatternGenConfig::new(6, 10, 2, 3, 5).with_shape(PatternShape::Dag),
        );
        assert!(dag.is_dag());
        let tree = generate_pattern(
            &g,
            &PatternGenConfig::new(6, 10, 2, 3, 6).with_shape(PatternShape::Tree),
        );
        assert!(tree.is_dag());
        assert_eq!(tree.edge_count(), 5, "trees have |Vp| - 1 edges");
    }

    #[test]
    fn predicates_are_satisfiable_in_the_data_graph() {
        let g = youtube_like(&YouTubeConfig::scaled(0.02, 8));
        for seed in 0..10 {
            let p = generate_pattern(&g, &PatternGenConfig::new(4, 5, 3, 3, seed));
            for u in p.nodes() {
                let pred = p.predicate(u);
                let satisfiable = g.nodes().any(|v| pred.satisfied_by(g.attrs(v)));
                assert!(satisfiable, "seed {seed}: predicate {pred} has no candidate");
            }
        }
    }

    #[test]
    fn deterministic_for_seed() {
        let g = data();
        let config = PatternGenConfig::new(5, 8, 2, 3, 42);
        assert_eq!(generate_pattern(&g, &config), generate_pattern(&g, &config));
    }

    #[test]
    fn single_node_pattern() {
        let g = data();
        let p = generate_pattern(&g, &PatternGenConfig::new(1, 0, 1, 1, 1));
        assert_eq!(p.node_count(), 1);
        assert_eq!(p.edge_count(), 0);
    }
}
