//! # igpm-generator
//!
//! Workload generators for the reproduction of *Incremental Graph Pattern
//! Matching* (Fan, Wang, Wu; SIGMOD 2011 / TODS 2013).
//!
//! The paper's evaluation (Section 8) uses two real-life datasets (a YouTube
//! crawl and a citation network), synthetic graphs produced by a generator
//! following the densification law, a pattern generator parameterised by
//! `(|V_p|, |E_p|, |pred|, k)`, and degree-biased update workloads. The real
//! datasets are not redistributable, so this crate provides **substitutes**
//! with the same sizes, attribute schemas and degree skew (documented in
//! `DESIGN.md` §4), plus faithful implementations of the synthetic graph,
//! pattern and update generators. Everything is seeded and deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod citation;
pub mod pattern_gen;
pub mod synthetic;
pub mod update_gen;
pub mod youtube;

pub use citation::{citation_like, CitationConfig};
pub use pattern_gen::{generate_pattern, PatternGenConfig, PatternShape};
pub use synthetic::{synthetic_graph, SyntheticConfig};
pub use update_gen::{
    degree_biased_deletions, degree_biased_insertions, evolution_split, mixed_batch,
    UpdateGenConfig,
};
pub use youtube::{youtube_like, YouTubeConfig};
