//! YouTube-like dataset substitute.
//!
//! The paper evaluates on "a crawled YouTube graph with 14829 nodes and 58901
//! edges, where each node denotes a video with attributes (e.g., length,
//! category, age), and edges indicate recommendations" (Section 8.1). The
//! crawl itself is not redistributable, so this module generates a seeded
//! scale-free recommendation graph with the same default size and the same
//! attribute schema (`category`, `uploader`, `age`, `length`, `rate`,
//! `views`). Category and uploader frequencies are skewed the way the public
//! crawl statistics are (a few categories and uploaders dominate), which is
//! what the pattern selectivity of Figures 16–18 depends on.

use igpm_graph::{Attributes, DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The category alphabet of the YouTube-like generator.
pub const CATEGORIES: &[&str] = &[
    "Music",
    "Entertainment",
    "Comedy",
    "People",
    "Film",
    "Sports",
    "News",
    "Politics",
    "Science",
    "Howto",
    "Travel",
    "Games",
    "Animals",
    "Autos",
    "Education",
    "Nonprofit",
];

/// Configuration of the YouTube-like generator.
#[derive(Debug, Clone)]
pub struct YouTubeConfig {
    /// Number of videos (nodes). The paper's crawl has 14 829.
    pub nodes: usize,
    /// Number of recommendation edges. The paper's crawl has 58 901.
    pub edges: usize,
    /// Number of distinct uploaders.
    pub uploaders: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for YouTubeConfig {
    fn default() -> Self {
        YouTubeConfig { nodes: 14_829, edges: 58_901, uploaders: 2_000, seed: 0x0907_2011 }
    }
}

impl YouTubeConfig {
    /// Scales the default dataset by `scale` (both nodes and edges), keeping
    /// the schema; used by the experiment harness's `--scale` flag.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        let base = YouTubeConfig::default();
        YouTubeConfig {
            nodes: ((base.nodes as f64 * scale).round() as usize).max(16),
            edges: ((base.edges as f64 * scale).round() as usize).max(32),
            uploaders: ((base.uploaders as f64 * scale).round() as usize).max(8),
            seed,
        }
    }
}

/// Samples an index in `0..n` with a Zipf-like skew (`rank^-1` weights).
fn zipf(rng: &mut StdRng, n: usize) -> usize {
    // Inverse-CDF sampling over harmonic weights, approximated cheaply:
    // repeatedly halve the range with probability proportional to the head.
    let u: f64 = rng.gen::<f64>();
    let h_n = (n as f64).ln() + 0.5772;
    let target = u * h_n;
    // rank r such that H(r) ~ target  =>  r ~ e^(target - gamma)
    let r = (target - 0.5772).exp().floor() as usize;
    r.min(n - 1)
}

/// Generates a YouTube-like recommendation graph.
pub fn youtube_like(config: &YouTubeConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut graph = DataGraph::with_capacity(n, config.edges);

    for i in 0..n {
        let category = CATEGORIES[zipf(&mut rng, CATEGORIES.len())];
        let uploader = format!("user{}", zipf(&mut rng, config.uploaders.max(1)));
        let age = rng.gen_range(1..2000i64); // days since upload
        let length = rng.gen_range(10..3600i64); // seconds
        let rate = (rng.gen_range(10..50) as f64) / 10.0; // 1.0 - 5.0 stars
        let views = rng.gen_range(0..5_000_000i64);
        let attrs = Attributes::new()
            .with("label", category)
            .with("category", category)
            .with("uploader", uploader)
            .with("age", age)
            .with("length", length)
            .with("rate", rate)
            .with("views", views)
            .with("uid", i as i64);
        graph.add_node(attrs);
    }
    if n < 2 {
        return graph;
    }

    // Recommendation edges: videos recommend other videos, preferentially
    // popular ones (scale-free in-degree) and with a mild same-category bias,
    // which is what produces the community structure Exp-1 looks for.
    let mut popularity_pool: Vec<u32> = (0..n as u32).collect();
    let mut attempts = 0usize;
    let max_attempts = config.edges * 20 + 1000;
    while graph.edge_count() < config.edges && attempts < max_attempts {
        attempts += 1;
        let from = rng.gen_range(0..n) as u32;
        let to = if rng.gen_bool(0.75) {
            popularity_pool[rng.gen_range(0..popularity_pool.len())]
        } else {
            rng.gen_range(0..n) as u32
        };
        if from == to {
            continue;
        }
        if graph.add_edge(NodeId(from), NodeId(to)) {
            popularity_pool.push(to);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::AttrValue;

    #[test]
    fn default_size_matches_paper_dataset() {
        let config = YouTubeConfig::default();
        assert_eq!(config.nodes, 14_829);
        assert_eq!(config.edges, 58_901);
    }

    #[test]
    fn scaled_config_and_generation() {
        let config = YouTubeConfig::scaled(0.02, 1);
        let g = youtube_like(&config);
        assert_eq!(g.node_count(), config.nodes);
        assert_eq!(g.edge_count(), config.edges);
        assert!(config.nodes < 500);
    }

    #[test]
    fn schema_is_complete() {
        let g = youtube_like(&YouTubeConfig::scaled(0.01, 2));
        for v in g.nodes() {
            let attrs = g.attrs(v);
            for key in ["category", "uploader", "age", "length", "rate", "views"] {
                assert!(attrs.get(key).is_some(), "missing attribute {key}");
            }
            assert!(CATEGORIES.contains(&attrs.label().unwrap()));
            match attrs.get("age") {
                Some(AttrValue::Int(age)) => assert!((1..2000).contains(age)),
                other => panic!("age should be an int, got {other:?}"),
            }
        }
    }

    #[test]
    fn category_distribution_is_skewed() {
        let g = youtube_like(&YouTubeConfig::scaled(0.05, 3));
        let music = g.nodes_where(|a| a.get("category") == Some(&AttrValue::from("Music"))).len();
        let nonprofit =
            g.nodes_where(|a| a.get("category") == Some(&AttrValue::from("Nonprofit"))).len();
        assert!(music > nonprofit, "head category must dominate tail category");
    }

    #[test]
    fn deterministic_for_seed() {
        let a = youtube_like(&YouTubeConfig::scaled(0.01, 9));
        let b = youtube_like(&YouTubeConfig::scaled(0.01, 9));
        assert_eq!(a, b);
    }
}
