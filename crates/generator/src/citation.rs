//! Citation-network dataset substitute.
//!
//! The paper's second real dataset is "a citation network [Tang et al. 2008]
//! with 17292 nodes and 61351 edges, where each node represents a paper with
//! attributes (e.g., title, author, the year of publication), and edges denote
//! citations" (Section 8.1). This module generates a seeded substitute with
//! the same default size and schema. Citations point (mostly) backwards in
//! time and preferentially at highly cited papers, so the graph is a
//! near-DAG with skewed in-degree — the structural properties the
//! incremental experiments (Figs. 18(d), 19(d), 20(e)) exercise. The `year`
//! attribute drives the snapshot-evolution update workloads.

use igpm_graph::{Attributes, DataGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Research fields used as node labels.
pub const FIELDS: &[&str] = &[
    "DB", "AI", "Systems", "Theory", "Networks", "Security", "Graphics", "HCI", "Bio", "ML", "PL",
    "Arch",
];

/// Configuration of the citation-network generator.
#[derive(Debug, Clone)]
pub struct CitationConfig {
    /// Number of papers (nodes). The paper's dataset has 17 292.
    pub nodes: usize,
    /// Number of citation edges. The paper's dataset has 61 351.
    pub edges: usize,
    /// Number of distinct authors.
    pub authors: usize,
    /// First publication year.
    pub year_min: i64,
    /// Last publication year.
    pub year_max: i64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for CitationConfig {
    fn default() -> Self {
        CitationConfig {
            nodes: 17_292,
            edges: 61_351,
            authors: 5_000,
            year_min: 1990,
            year_max: 2011,
            seed: 0x0200_8117,
        }
    }
}

impl CitationConfig {
    /// Scales the default dataset by `scale`, keeping the schema.
    pub fn scaled(scale: f64, seed: u64) -> Self {
        let base = CitationConfig::default();
        CitationConfig {
            nodes: ((base.nodes as f64 * scale).round() as usize).max(16),
            edges: ((base.edges as f64 * scale).round() as usize).max(32),
            authors: ((base.authors as f64 * scale).round() as usize).max(8),
            ..base
        }
        .with_seed(seed)
    }

    fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Generates a citation-like graph.
pub fn citation_like(config: &CitationConfig) -> DataGraph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.nodes;
    let mut graph = DataGraph::with_capacity(n, config.edges);
    let year_span = (config.year_max - config.year_min).max(1);

    // Nodes are created in publication order: node index correlates with year,
    // so "cite an earlier node" means "cite an older paper".
    for i in 0..n {
        let year = config.year_min + (i as i64 * year_span) / n.max(1) as i64;
        let field = FIELDS[rng.gen_range(0..FIELDS.len())];
        let author = format!("author{}", rng.gen_range(0..config.authors.max(1)));
        let cites_hint = rng.gen_range(0..60i64);
        let attrs = Attributes::new()
            .with("label", field)
            .with("field", field)
            .with("author", author)
            .with("year", year)
            .with("refs", cites_hint)
            .with("uid", i as i64);
        graph.add_node(attrs);
    }
    if n < 2 {
        return graph;
    }

    // Citations: overwhelmingly to older papers, preferentially to papers that
    // already have citations (cumulative advantage). A small fraction of
    // "forward" edges models corrections/extended versions and keeps the graph
    // from being a strict DAG, as in the real dataset.
    let mut cited_pool: Vec<u32> = (0..n as u32).collect();
    let mut attempts = 0usize;
    let max_attempts = config.edges * 20 + 1000;
    while graph.edge_count() < config.edges && attempts < max_attempts {
        attempts += 1;
        let from = rng.gen_range(1..n) as u32;
        let to = if rng.gen_bool(0.8) {
            let candidate = cited_pool[rng.gen_range(0..cited_pool.len())];
            if candidate >= from && rng.gen_bool(0.95) {
                // resample an older paper
                rng.gen_range(0..from)
            } else {
                candidate
            }
        } else {
            rng.gen_range(0..from)
        };
        if from == to {
            continue;
        }
        if graph.add_edge(NodeId(from), NodeId(to)) {
            cited_pool.push(to);
        }
    }
    graph
}

#[cfg(test)]
mod tests {
    use super::*;
    use igpm_graph::AttrValue;

    #[test]
    fn default_size_matches_paper_dataset() {
        let config = CitationConfig::default();
        assert_eq!(config.nodes, 17_292);
        assert_eq!(config.edges, 61_351);
    }

    #[test]
    fn generation_and_schema() {
        let g = citation_like(&CitationConfig::scaled(0.02, 5));
        assert!(g.node_count() >= 16);
        for v in g.nodes() {
            let attrs = g.attrs(v);
            for key in ["field", "author", "year", "refs"] {
                assert!(attrs.get(key).is_some(), "missing {key}");
            }
            assert!(FIELDS.contains(&attrs.label().unwrap()));
        }
    }

    #[test]
    fn citations_point_mostly_backwards_in_time() {
        let g = citation_like(&CitationConfig::scaled(0.05, 7));
        let mut backwards = 0usize;
        let mut total = 0usize;
        for (from, to) in g.edges() {
            let year = |v: NodeId| match g.attrs(v).get("year") {
                Some(AttrValue::Int(y)) => *y,
                _ => unreachable!(),
            };
            total += 1;
            if year(to) <= year(from) {
                backwards += 1;
            }
        }
        assert!(
            backwards * 100 / total >= 90,
            "expected >=90% backward citations, got {}%",
            backwards * 100 / total
        );
    }

    #[test]
    fn years_increase_with_node_index() {
        let g = citation_like(&CitationConfig::scaled(0.01, 9));
        let year = |v: NodeId| match g.attrs(v).get("year") {
            Some(AttrValue::Int(y)) => *y,
            _ => unreachable!(),
        };
        assert!(year(NodeId(0)) <= year(NodeId((g.node_count() - 1) as u32)));
    }

    #[test]
    fn deterministic_for_seed() {
        let a = citation_like(&CitationConfig::scaled(0.01, 4));
        let b = citation_like(&CitationConfig::scaled(0.01, 4));
        assert_eq!(a, b);
        let c = citation_like(&CitationConfig::scaled(0.01, 6));
        assert_ne!(a, c);
    }
}
